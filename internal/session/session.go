// Package session layers epoch-based reliable multicast sessions over the
// RDMC engine, in the style of the paper's §4.6 Derecho sketch: RDMC itself
// "assumes failures are rare" and simply wedges a group when a member dies;
// the layer above is responsible for agreeing on the survivors and restarting
// multicast among them. A session owns a monotonically numbered epoch. Each
// epoch is one core RDMC group; when any member is suspected of failure the
// session wedges, the survivors agree on the next membership through a shared
// state table (package sst), and a fresh group is installed with remapped
// ranks. Messages that were sent but not yet stable everywhere are re-sent in
// the new epoch, so callers observe at-least-once, gap-free, identically
// ordered delivery across failures.
//
// # Agreement protocol
//
// Every original member owns one row of a five-column SST (one-sided writes,
// per-queue-pair FIFO):
//
//	col 0  delivered  next session sequence this member will deliver
//	col 1  suspected  bitmap (by original rank) of members it suspects
//	col 2  installed  highest epoch this member has installed
//	col 3  proposed   highest epoch this member proposes to install
//	col 4  have       end of this member's message log (delivered, plus —
//	                  on a root — assigned-but-unsent sequences)
//
// On suspicion a member wedges: it freezes the current group (core
// Group.Wedge), publishes its suspicion bitmap and a proposal for epoch+1,
// and stops publishing its frontier — so the (delivered, have) pair each
// member exposes is frozen before its proposal becomes visible, and per-QP
// FIFO ordering lets everyone else read a consistent snapshot. Members then
// gossip suspicions to a fixpoint: each unions the bitmaps of the rows it
// trusts (rows of members it does not itself suspect) and republishes until
// nothing changes. A member that finds its own bit in a trusted row concedes
// — the connected majority has spoken — and becomes Evicted. The survivor
// set is the complement of the fixpoint; it must be a strict majority of the
// original membership or the session parks in Stalled (a partitioned
// minority must never install an epoch of its own). Once every survivor
// publishes the same suspicion set and proposal, each installs the new epoch
// deterministically from the frozen rows: the new root is the survivor with
// the largest log (ties to the lowest original rank), members are ordered
// root first then by original rank, and the re-send base is the minimum
// delivered frontier across survivors.
//
// # Re-send rule
//
// The new root re-sends its log from the minimum delivered frontier to its
// log end, in order, before accepting new messages. Receivers map the new
// group's sequence numbers onto session sequences starting at that base and
// drop anything below their own frontier, so duplicates are suppressed and
// the delivered sequence has no gaps. The root's log always covers the range:
// it delivered (or assigned) every sequence below its own log end, and log
// pruning stays below the minimum delivered frontier of the trusted members.
// Messages the old root assigned that no survivor received die with it —
// survivors converge on a common gap-free prefix, which is the strongest
// guarantee available without acknowledging every send.
//
// A new epoch starts quiet: the root transmits nothing until every member of
// the new view has published installed ≥ the new epoch, so a prepare can
// never race a member that has not yet created its group endpoint (this also
// closes the equivalent startup race for epoch 1).
//
// # Limitations
//
// Failure detection is external (broken queue pairs and the host's failure
// notifications); a partitioned minority that happens to be completely idle
// has nothing in flight to break and simply stops hearing from the majority
// — it keeps its last state rather than stalling, exactly like a real
// deployment without heartbeats. Suspicion fixpoints assume failures split
// the membership cleanly (crashes, partitions); pathological one-way link
// failures can stall a session but never split it: installing disjoint
// epochs would take two disjoint strict majorities. Broken queue pairs are
// never reconnected, so a healed minority stays parked until the process
// restarts — the standard CAP trade, chosen for the majority side's
// availability.
package session

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
	"rdmc/internal/sst"
)

// Table columns (see the package comment).
const (
	colDelivered = 0
	colSuspected = 1
	colInstalled = 2
	colProposed  = 3
	colHave      = 4
	numCols      = 5
)

// State is a session's lifecycle state.
type State int

// Session states.
const (
	// StateActive: an epoch is installed and multicast is (or is becoming)
	// live.
	StateActive State = iota + 1
	// StateWedged: a member is suspected; the group is frozen and the
	// survivors are agreeing on the next epoch.
	StateWedged
	// StateStalled: the local node cannot assemble a majority — it is on
	// the losing side of a partition and parks rather than split the
	// session.
	StateStalled
	// StateEvicted: the connected majority declared this node failed; the
	// session is permanently disabled locally.
	StateEvicted
	// StateClosed: Close was called (or an epoch install failed fatally).
	StateClosed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateWedged:
		return "wedged"
	case StateStalled:
		return "stalled"
	case StateEvicted:
		return "evicted"
	case StateClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// Errors returned by a session.
var (
	// ErrEvicted is returned once the majority has removed this node.
	ErrEvicted = fmt.Errorf("session: evicted by the surviving majority")
	// ErrNotRoot is returned by Send on a member that is not the current
	// root.
	ErrNotRoot = fmt.Errorf("session: only the current root may send")
	// ErrClosed is returned after Close.
	ErrClosed = fmt.Errorf("session: closed")
)

// Config describes one session. Every member constructs its Manager with an
// identical ID and member list.
type Config struct {
	// ID names the session: it is the SST table id, and epochs use group
	// ids ID+1, ID+2, ... — the caller must keep that range free of other
	// groups. Must be below 1<<30 minus the epoch budget.
	ID uint32
	// Members lists the original membership; Members[0] is the first root.
	// At most 64 members (the suspicion bitmap).
	Members []rdma.NodeID
	// BlockSize, Generator, SendWindow, RecvWindow configure each epoch's
	// underlying group (see core.GroupConfig).
	BlockSize  int
	Generator  schedule.Generator
	SendWindow int
	RecvWindow int
	// MetadataOnly runs transfers without data buffers (simulation
	// workloads); Deliver callbacks then carry nil data.
	MetadataOnly bool
	// Throttle, when non-nil, is handed to every epoch's core group so a
	// multi-tenant service can ration the NIC's send budget across
	// sessions (see core.SendThrottle). Epoch groups come and go across
	// view changes; the core releases and forgets each retired epoch's
	// budget, so the throttle only ever sees the live one.
	Throttle core.SendThrottle
	// Observer, when non-nil, instruments the session (counters
	// session.epochs, session.resends and histogram session.recovery_ms,
	// plus structured events).
	Observer *obs.Obs
}

// Callbacks notify the application. All callbacks run outside the session's
// lock and may call back into the Manager.
type Callbacks struct {
	// Deliver runs for every delivered message, in session-sequence order
	// with no gaps and no duplicates. data is nil for metadata-only
	// sessions.
	Deliver func(seq uint64, data []byte, size int)
	// OnEpoch runs after a new epoch is installed (including epoch 1),
	// with the new membership in rank order (members[0] is the root).
	OnEpoch func(epoch uint64, members []rdma.NodeID)
	// OnState runs on wedge, stall, eviction, and close transitions; err
	// is non-nil for terminal failures.
	OnState func(state State, err error)
}

// Stats is a snapshot of a session's counters.
type Stats struct {
	// Epochs installed locally, including the first.
	Epochs uint64
	// Resent counts messages re-sent across epoch changes (root only).
	Resent uint64
	// ResentBytes is the byte volume of those re-sends.
	ResentBytes uint64
	// Delivered counts locally delivered messages.
	Delivered uint64
	// Duplicates counts re-sent messages suppressed at delivery.
	Duplicates uint64
	// Dropped counts queued sends discarded — because the node lost the
	// root role across a view change, was evicted, or closed with sends
	// still queued. Every discard path counts each entry exactly once.
	Dropped uint64
	// WedgedInFlight is the number of sends caught in flight by the most
	// recent wedge.
	WedgedInFlight int
	// LastRecovery is the wedge-to-install latency of the most recent
	// view change.
	LastRecovery time.Duration
}

// logEntry is one sent or delivered message retained for possible re-send.
type logEntry struct {
	size int64
	data []byte
}

// Manager is one node's endpoint of a session.
type Manager struct {
	engine *core.Engine
	cfg    Config
	cbs    Callbacks
	so     *sessionObs

	// mu serializes the session state machine. Lock order is Manager.mu →
	// Group.mu/Engine.mu: the manager calls into core under mu, and core
	// returns application callbacks out of its own locks, so core never
	// calls the manager while holding one.
	mu sync.Mutex

	table  *sst.Table
	rows   [][]uint64 // race-free shadow of the table, advanced on push notifications
	myRank int        // original rank
	n      int

	state State
	err   error

	epoch     uint64
	epochBase uint64 // session sequence of the current epoch's core sequence 0
	members   []rdma.NodeID
	group     *core.Group
	retired   []*core.Group // wedged old-epoch groups awaiting connection close

	suspected uint64 // bitmap by original rank
	proposed  uint64

	log         map[uint64]logEntry
	stableFloor uint64 // log holds [stableFloor, haveEnd)
	nextDeliver uint64
	haveEnd     uint64
	queued      []logEntry // root-side sends accepted while wedged

	barrier    bool // every member of the current view has installed it
	resendDone bool
	wedgedAt   time.Duration

	// unobserve detaches this session's failure subscription from the
	// engine; terminal transitions call it so a churned-through session
	// leaves nothing behind on the engine.
	unobserve func()

	stats Stats
}

// New creates the local endpoint of a session. The provider must be the one
// the engine runs on (the table registers memory and queue pairs beside the
// groups'). New subscribes to the engine's failure notifications
// (Engine.AddFailureObserver), so any number of sessions — and other
// observers — may share one engine; the subscription is released when the
// session reaches a terminal state.
func New(engine *core.Engine, provider rdma.Provider, cfg Config, cbs Callbacks) (*Manager, error) {
	if len(cfg.Members) < 2 || len(cfg.Members) > 64 {
		return nil, fmt.Errorf("session: need 2..64 members, got %d", len(cfg.Members))
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("session: block size must be positive, got %d", cfg.BlockSize)
	}
	m := &Manager{
		engine:  engine,
		cfg:     cfg,
		cbs:     cbs,
		so:      newSessionObs(cfg.Observer, engine.NodeID(), cfg.ID),
		n:       len(cfg.Members),
		members: append([]rdma.NodeID(nil), cfg.Members...),
		log:     make(map[uint64]logEntry),
	}
	m.rows = make([][]uint64, m.n)
	for i := range m.rows {
		m.rows[i] = make([]uint64, numCols)
	}
	// Hold the lock across construction: on multi-threaded transports a
	// peer's push can fire the watcher before New returns.
	m.mu.Lock()
	defer m.mu.Unlock()
	table, err := sst.New(provider, cfg.ID, cfg.Members, numCols, m.onTableUpdate)
	if err != nil {
		return nil, fmt.Errorf("session: state table: %w", err)
	}
	m.table = table
	m.myRank = table.Rank()
	m.epoch = 1
	if err := m.createEpochGroupLocked(); err != nil {
		return nil, err
	}
	m.state = StateActive
	m.stats.Epochs = 1
	if m.so != nil {
		m.so.epochs.Inc()
	}
	m.setLocked(colInstalled, 1)
	m.unobserve = engine.AddFailureObserver(m.onNodeFailure)
	return m, nil
}

// groupID maps an epoch to its core group id.
func (m *Manager) groupID(epoch uint64) core.GroupID {
	return core.GroupID(uint64(m.cfg.ID) + epoch)
}

// setLocked publishes one cell of the local row and mirrors it in the
// shadow.
func (m *Manager) setLocked(col uint, v uint64) {
	m.rows[m.myRank][col] = v
	_ = m.table.Set(col, v) // push errors surface as peer-side suspicion
}

// onTableUpdate runs when a remote member pushes a cell update. Reading the
// reported cell here is race-free (see sst.New); the shadow is the only
// table view the protocol reads, so concurrent remote writes to other cells
// never race a decision.
func (m *Manager) onTableUpdate(row, col int) {
	m.mu.Lock()
	if row != m.myRank {
		m.rows[row][col] = m.table.Get(row, col)
	}
	var actions []func()
	switch m.state {
	case StateActive:
		switch col {
		case colSuspected, colProposed:
			actions = m.reactRemoteLocked(row)
		case colInstalled:
			actions = m.tryPumpLocked()
		case colDelivered:
			m.pruneLocked()
		}
	case StateWedged, StateStalled:
		actions = m.tryDecideLocked()
	}
	m.mu.Unlock()
	runAll(actions)
}

// onNodeFailure receives the engine's externally detected failures (the
// bootstrap mesh noticing a dead peer).
func (m *Manager) onNodeFailure(node rdma.NodeID) {
	m.mu.Lock()
	actions := m.suspectLocked(node)
	m.mu.Unlock()
	runAll(actions)
}

// onGroupFailure receives an epoch group's failure callback and attributes
// it to the suspected node.
func (m *Manager) onGroupFailure(epoch uint64, err error) {
	m.mu.Lock()
	var actions []func()
	if epoch == m.epoch {
		var fe *core.FailureError
		if errors.As(err, &fe) {
			actions = m.suspectLocked(fe.Node)
		}
	}
	m.mu.Unlock()
	runAll(actions)
}

// origRank maps a node id to its original rank, or -1.
func (m *Manager) origRank(node rdma.NodeID) int {
	for i, mm := range m.cfg.Members {
		if mm == node {
			return i
		}
	}
	return -1
}

// rootLocked reports whether the local node leads the current view.
func (m *Manager) rootLocked() bool {
	return len(m.members) > 0 && m.members[0] == m.engine.NodeID()
}

// suspectLocked records a failure suspicion and advances the protocol.
func (m *Manager) suspectLocked(node rdma.NodeID) []func() {
	switch m.state {
	case StateActive, StateWedged, StateStalled:
	default:
		return nil
	}
	r := m.origRank(node)
	if r < 0 || r == m.myRank {
		return nil
	}
	bit := uint64(1) << uint(r)
	if m.suspected&bit != 0 {
		if m.state == StateActive {
			return nil // stale report about an already-excluded member
		}
		return m.tryDecideLocked()
	}
	actions := m.wedgeLocked()
	m.suspected |= bit
	m.setLocked(colSuspected, m.suspected)
	return append(actions, m.tryDecideLocked()...)
}

// reactRemoteLocked folds a trusted member's published suspicions or
// proposal into the local state while active.
func (m *Manager) reactRemoteLocked(row int) []func() {
	if m.suspected&(1<<uint(row)) != 0 {
		return nil
	}
	sus, prop := m.rows[row][colSuspected], m.rows[row][colProposed]
	newBits := sus &^ m.suspected
	if newBits == 0 && prop <= m.epoch {
		return nil
	}
	actions := m.wedgeLocked()
	if nb := newBits &^ (1 << uint(m.myRank)); nb != 0 {
		m.suspected |= nb
		m.setLocked(colSuspected, m.suspected)
	}
	return append(actions, m.tryDecideLocked()...)
}

// wedgeLocked freezes the current epoch: the group stops, the frontier
// columns stop advancing, and a proposal for the next epoch is published.
// The frozen (delivered, have) pair was pushed before the proposal on the
// same FIFO queue pairs, so every peer that sees the proposal reads a stable
// frontier.
func (m *Manager) wedgeLocked() []func() {
	if m.state != StateActive {
		return nil
	}
	m.state = StateWedged
	m.wedgedAt = m.engine.Now()
	m.barrier, m.resendDone = false, false
	if m.proposed <= m.epoch {
		m.proposed = m.epoch + 1
		m.setLocked(colProposed, m.proposed)
	}
	if m.group != nil {
		ds := m.group.Wedge()
		m.stats.WedgedInFlight = len(ds.Pending)
		if ds.InFlightSeq >= 0 {
			m.stats.WedgedInFlight++
		}
		m.retired = append(m.retired, m.group)
		m.group = nil
	}
	if m.so != nil {
		m.so.wedges.Inc()
		m.so.record(m.wedgedAt, obs.EvSessionWedge, int64(m.epoch))
	}
	var actions []func()
	if fn := m.cbs.OnState; fn != nil {
		actions = append(actions, func() { fn(StateWedged, nil) })
	}
	return actions
}

// tryDecideLocked runs the agreement round: gossip suspicions to a fixpoint,
// check for self-eviction and quorum, align on the highest proposed epoch,
// and install once every survivor's row matches.
func (m *Manager) tryDecideLocked() []func() {
	if m.state != StateWedged && m.state != StateStalled {
		return nil
	}
	s := m.suspected
	for again := true; again; {
		again = false
		for r := 0; r < m.n; r++ {
			if r == m.myRank || s&(1<<uint(r)) != 0 {
				continue
			}
			if extra := m.rows[r][colSuspected] &^ s; extra != 0 {
				s |= extra
				again = true
			}
		}
	}
	if s&(1<<uint(m.myRank)) != 0 {
		return m.evictLocked()
	}
	if s != m.suspected {
		m.suspected = s
		m.setLocked(colSuspected, s)
	}
	var survivors []int
	for r := 0; r < m.n; r++ {
		if s&(1<<uint(r)) == 0 {
			survivors = append(survivors, r)
		}
	}
	if len(survivors)*2 <= m.n {
		var actions []func()
		if m.state != StateStalled {
			m.state = StateStalled
			if fn := m.cbs.OnState; fn != nil {
				actions = append(actions, func() { fn(StateStalled, nil) })
			}
		}
		return actions
	}
	target := m.proposed
	for _, r := range survivors {
		if r == m.myRank {
			continue
		}
		if p := m.rows[r][colProposed]; p > target {
			target = p
		}
	}
	if target > m.proposed {
		m.proposed = target
		m.setLocked(colProposed, target)
	}
	for _, r := range survivors {
		if r == m.myRank {
			continue
		}
		if m.rows[r][colSuspected] != s || m.rows[r][colProposed] != target {
			return nil
		}
	}
	return m.installLocked(target, survivors)
}

// dropQueuedLocked discards the sends queued while wedged, counting each
// entry in Stats.Dropped exactly once. Every path that abandons the queue
// (losing the root role, eviction, close) goes through here, so the count and
// the queue can never diverge and no entry is double-counted.
func (m *Manager) dropQueuedLocked() {
	if len(m.queued) == 0 {
		return
	}
	m.stats.Dropped += uint64(len(m.queued))
	m.queued = nil
}

// teardownLocked releases everything a terminal session holds on the engine
// and provider: the failure subscription, the state table's queue pairs and
// registered region, and the retired epochs' (plus the live group's) queue
// pairs — returned as deferred actions so connections close outside the
// lock. Eviction is terminal — the majority has wedged the shared epochs, so
// closing is as quiet as the post-install close on the surviving side — and a
// session that kept its connections parked forever would leak dataplane
// state on every churned-through membership (Storm's lesson: per-connection
// state is what breaks RDMA systems at scale).
func (m *Manager) teardownLocked() []func() {
	var actions []func()
	if m.unobserve != nil {
		un := m.unobserve
		m.unobserve = nil
		actions = append(actions, un)
	}
	gs := m.retired
	m.retired = nil
	if m.group != nil {
		m.group.Wedge()
		gs = append(gs, m.group)
		m.group = nil
	}
	for _, g := range gs {
		actions = append(actions, g.CloseConnections)
	}
	if m.table != nil {
		actions = append(actions, m.table.Close)
	}
	return actions
}

// evictLocked concedes to the majority's verdict.
func (m *Manager) evictLocked() []func() {
	if m.state == StateEvicted || m.state == StateClosed {
		return nil
	}
	m.state = StateEvicted
	m.err = ErrEvicted
	actions := m.teardownLocked()
	m.dropQueuedLocked()
	if fn := m.cbs.OnState; fn != nil {
		actions = append(actions, func() { fn(StateEvicted, ErrEvicted) })
	}
	return actions
}

// installLocked moves to the agreed epoch. Every survivor computes the same
// view from the same frozen rows: the root is the survivor with the largest
// log (ties to the lowest original rank, which keeps a surviving root in
// place — no live survivor can out-log the member that assigned every
// sequence), and the re-send base is the minimum delivered frontier.
func (m *Manager) installLocked(target uint64, survivors []int) []func() {
	var actions []func()
	minD := ^uint64(0)
	root, rootHave := -1, uint64(0)
	for _, r := range survivors {
		d, h := m.rows[r][colDelivered], m.rows[r][colHave]
		if d < minD {
			minD = d
		}
		if root < 0 || h > rootHave {
			root, rootHave = r, h
		}
	}
	// Every survivor has wedged (its proposal proves it), so closing the
	// dead epochs' connections is quiet for the living and moot for the
	// dead. Deferred out of the lock like any other callback.
	for _, g := range m.retired {
		actions = append(actions, g.CloseConnections)
	}
	m.retired = nil

	m.epoch = target
	m.epochBase = minD
	members := make([]rdma.NodeID, 0, len(survivors))
	members = append(members, m.cfg.Members[root])
	for _, r := range survivors {
		if r != root {
			members = append(members, m.cfg.Members[r])
		}
	}
	m.members = members
	if err := m.createEpochGroupLocked(); err != nil {
		m.state = StateClosed
		m.err = err
		if fn := m.cbs.OnState; fn != nil {
			actions = append(actions, func() { fn(StateClosed, err) })
		}
		return actions
	}
	m.state = StateActive
	m.barrier, m.resendDone = false, false
	if !m.rootLocked() {
		m.dropQueuedLocked()
	}
	m.stats.Epochs++
	lat := m.engine.Now() - m.wedgedAt
	m.stats.LastRecovery = lat
	if m.so != nil {
		m.so.epochs.Inc()
		m.so.recovery.Observe(lat.Milliseconds())
		m.so.record(m.engine.Now(), obs.EvSessionInstall, int64(target))
	}
	m.setLocked(colInstalled, target)
	if fn := m.cbs.OnEpoch; fn != nil {
		e, mem := target, append([]rdma.NodeID(nil), members...)
		actions = append(actions, func() { fn(e, mem) })
	}
	return append(actions, m.tryPumpLocked()...)
}

// createEpochGroupLocked builds the current epoch's core group.
func (m *Manager) createEpochGroupLocked() error {
	e := m.epoch
	cfg := core.GroupConfig{
		BlockSize:  m.cfg.BlockSize,
		Generator:  m.cfg.Generator,
		SendWindow: m.cfg.SendWindow,
		RecvWindow: m.cfg.RecvWindow,
		Throttle:   m.cfg.Throttle,
		Callbacks: core.Callbacks{
			Completion: func(seq int, data []byte, size int) { m.onGroupDeliver(e, seq, data, size) },
			Failure:    func(err error) { m.onGroupFailure(e, err) },
		},
	}
	if !m.cfg.MetadataOnly {
		cfg.Callbacks.Incoming = func(size int) []byte { return make([]byte, size) }
	}
	g, err := m.engine.CreateGroup(m.groupID(e), m.members, cfg)
	if err != nil {
		return fmt.Errorf("session: epoch %d group: %w", e, err)
	}
	m.group = g
	return nil
}

// tryPumpLocked is the root's transmit gate: once every member of the view
// has installed the epoch, flush the re-send range, then any sends queued
// while wedged. Sends accepted before the barrier sit in the log and are
// carried by the flush, so each sequence is transmitted exactly once and in
// order — the group's core sequence k always carries session sequence
// epochBase+k.
func (m *Manager) tryPumpLocked() []func() {
	if m.state != StateActive || !m.rootLocked() {
		return nil
	}
	if !m.barrier {
		for _, mm := range m.members {
			if m.rows[m.origRank(mm)][colInstalled] < m.epoch {
				return nil
			}
		}
		m.barrier = true
	}
	if !m.resendDone {
		m.resendDone = true
		for s := m.epochBase; s < m.haveEnd; s++ {
			e := m.log[s]
			m.transmitLocked(e)
			if m.epoch > 1 {
				m.stats.Resent++
				m.stats.ResentBytes += uint64(e.size)
				if m.so != nil {
					m.so.resends.Inc()
					m.so.record(m.engine.Now(), obs.EvSessionResend, int64(s))
				}
			}
		}
	}
	if len(m.queued) > 0 {
		q := m.queued
		m.queued = nil
		for _, e := range q {
			m.appendLocked(e)
		}
	}
	return nil
}

// appendLocked assigns the next session sequence to a root-side send and
// transmits it if the epoch is already pumping.
func (m *Manager) appendLocked(e logEntry) {
	sseq := m.haveEnd
	m.log[sseq] = e
	m.haveEnd = sseq + 1
	m.setLocked(colHave, m.haveEnd)
	if m.barrier && m.resendDone {
		m.transmitLocked(e)
	}
}

// transmitLocked hands one log entry to the current group. Errors are not
// surfaced: a group that refuses a send has wedged, and the entry stays in
// the log for the next epoch's flush.
func (m *Manager) transmitLocked(e logEntry) {
	if e.data != nil {
		_ = m.group.Send(e.data)
	} else {
		_ = m.group.SendSized(int(e.size))
	}
}

// onGroupDeliver receives a core group delivery. Deliveries from retired
// epochs — including callbacks already in flight when a wedge hit — are
// dropped: their content is covered by the next epoch's re-send, and
// advancing the log after the frontier froze would let different nodes pick
// different roots.
func (m *Manager) onGroupDeliver(epoch uint64, coreSeq int, data []byte, size int) {
	m.mu.Lock()
	var actions []func()
	if epoch == m.epoch && m.state == StateActive {
		actions = m.deliverLocked(coreSeq, data, size)
	}
	m.mu.Unlock()
	runAll(actions)
}

// deliverLocked maps a core delivery onto the session sequence, suppresses
// re-send duplicates, records the entry, and publishes the new frontier.
func (m *Manager) deliverLocked(coreSeq int, data []byte, size int) []func() {
	sseq := m.epochBase + uint64(coreSeq)
	if sseq < m.nextDeliver {
		m.stats.Duplicates++
		return nil
	}
	// Core delivers in order, so sseq == nextDeliver.
	m.log[sseq] = logEntry{size: int64(size), data: data}
	m.nextDeliver = sseq + 1
	m.stats.Delivered++
	if m.haveEnd < m.nextDeliver {
		m.haveEnd = m.nextDeliver
		m.setLocked(colHave, m.haveEnd) // before delivered: peers must see have ≥ delivered
	}
	m.setLocked(colDelivered, m.nextDeliver)
	m.pruneLocked()
	var actions []func()
	if fn := m.cbs.Deliver; fn != nil {
		actions = append(actions, func() { fn(sseq, data, size) })
	}
	return actions
}

// pruneLocked drops log entries every trusted member has delivered; they can
// never be re-sent.
func (m *Manager) pruneLocked() {
	min := m.nextDeliver
	for r := 0; r < m.n; r++ {
		if r == m.myRank || m.suspected&(1<<uint(r)) != 0 {
			continue
		}
		if v := m.rows[r][colDelivered]; v < min {
			min = v
		}
	}
	for ; m.stableFloor < min; m.stableFloor++ {
		delete(m.log, m.stableFloor)
	}
}

// Send multicasts data to the session (current root only). While the session
// is wedged or stalled the send is queued and transmitted — still in order —
// once a new epoch is live; if the node loses the root role across the view
// change, queued sends are dropped and counted in Stats.Dropped.
func (m *Manager) Send(data []byte) error {
	return m.submit(logEntry{size: int64(len(data)), data: data})
}

// SendSized multicasts a metadata-only message of the given size.
func (m *Manager) SendSized(size int) error {
	return m.submit(logEntry{size: int64(size)})
}

func (m *Manager) submit(e logEntry) error {
	if e.size <= 0 {
		return fmt.Errorf("session: message must have at least one byte, got %d", e.size)
	}
	if e.size >= 1<<32 {
		return core.ErrMessageTooLarge
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case StateEvicted:
		return ErrEvicted
	case StateClosed:
		return ErrClosed
	}
	if !m.rootLocked() {
		return ErrNotRoot
	}
	if m.state == StateActive {
		m.appendLocked(e)
	} else {
		m.queued = append(m.queued, e)
	}
	return nil
}

// State returns the session state and, for terminal states, the cause.
func (m *Manager) State() (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state, m.err
}

// Epoch returns the current epoch number.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Members returns the current view, root first.
func (m *Manager) Members() []rdma.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]rdma.NodeID(nil), m.members...)
}

// IsRoot reports whether the local node leads the current view.
func (m *Manager) IsRoot() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rootLocked()
}

// Delivered returns the next session sequence to deliver (all sequences
// below it have been delivered locally, gap-free).
func (m *Manager) Delivered() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextDeliver
}

// Stats returns a snapshot of the session counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close shuts the session down locally. Peers observe the departure as a
// failure — leaving and crashing are the same event to the survivors. Sends
// still queued from a wedge are discarded and counted in Stats.Dropped.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.state == StateClosed {
		m.mu.Unlock()
		return nil
	}
	m.state = StateClosed
	m.err = ErrClosed
	actions := m.teardownLocked()
	m.dropQueuedLocked()
	m.mu.Unlock()
	runAll(actions)
	return nil
}

func runAll(cbs []func()) {
	for _, cb := range cbs {
		cb()
	}
}
