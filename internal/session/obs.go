package session

import (
	"time"

	"rdmc/internal/obs"
	"rdmc/internal/rdma"
)

// sessionObs is the session's pre-resolved instrumentation, following the
// engine's pattern: every instrument is looked up once at construction so the
// protocol paths never take the registry lock, and a nil *sessionObs (no
// observer configured) disables everything behind a single pointer test with
// no allocation.
type sessionObs struct {
	ring *obs.Ring
	node int32
	id   uint32

	epochs  *obs.Counter // epochs installed (including the first)
	resends *obs.Counter // messages re-sent across view changes
	wedges  *obs.Counter // wedge transitions

	recovery *obs.Histogram // wedge-to-install latency, milliseconds
}

// newSessionObs resolves the instruments, or returns nil when o is nil.
func newSessionObs(o *obs.Obs, node rdma.NodeID, id uint32) *sessionObs {
	if o == nil {
		return nil
	}
	r := o.Registry()
	return &sessionObs{
		ring:     o.Ring(),
		node:     int32(node),
		id:       id,
		epochs:   r.Counter("session.epochs"),
		resends:  r.Counter("session.resends"),
		wedges:   r.Counter("session.wedges"),
		recovery: r.Histogram("session.recovery_ms", obs.ExpBuckets(1, 2, 16)),
	}
}

// record appends one structured session event; Arg is kind-specific (see the
// event constants).
func (so *sessionObs) record(at time.Duration, kind obs.EventKind, arg int64) {
	so.ring.Record(obs.Event{
		At:    at,
		Kind:  kind,
		Node:  so.node,
		Group: so.id,
		Seq:   -1,
		Block: -1,
		Peer:  -1,
		Arg:   arg,
	})
}
