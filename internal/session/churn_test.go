package session

import (
	"errors"
	"testing"

	"rdmc/internal/rdma"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
)

// White-box teardown tests: a multi-tenant service churns sessions over one
// engine, so a terminal session must leave nothing behind — no entry in the
// engine's group table, no retired groups holding queue pairs, no failure
// subscription, and a drop counter that never double-counts the queue.

func churnGrid(t *testing.T, n int, seed int64) *simhost.Grid {
	t.Helper()
	g, err := simhost.New(simhost.Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         n,
			LinkBandwidth: 1e9,
			Latency:       1e-6,
			RetryTimeout:  1e-4,
			CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func churnSessions(t *testing.T, g *simhost.Grid, onState func(who int, s State)) []*Manager {
	t.Helper()
	members := make([]rdma.NodeID, g.Nodes())
	for i := range members {
		members[i] = rdma.NodeID(i)
	}
	ms := make([]*Manager, g.Nodes())
	for i := range ms {
		who := i
		cfg := Config{ID: 500, Members: members, BlockSize: 4096, MetadataOnly: true}
		cbs := Callbacks{}
		if onState != nil {
			cbs.OnState = func(s State, err error) { onState(who, s) }
		}
		m, err := New(g.Engine(i), g.Network().Provider(rdma.NodeID(i)), cfg, cbs)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		ms[i] = m
	}
	return ms
}

// assertTornDown checks every engine-side and provider-side resource of a
// terminal session is released.
func assertTornDown(t *testing.T, who int, m *Manager) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.group != nil {
		t.Errorf("node %d: terminal session still owns a live group", who)
	}
	if len(m.retired) != 0 {
		t.Errorf("node %d: %d retired groups still parked after teardown", who, len(m.retired))
	}
	if m.unobserve != nil {
		t.Errorf("node %d: failure subscription still installed after teardown", who)
	}
	if n := m.engine.NumGroups(); n != 0 {
		t.Errorf("node %d: engine group table still holds %d entries", who, n)
	}
}

// TestEvictionTearsDownAndCountsDropsOnce drives a split-brain accusation:
// node 0 wrongly suspects node 3 while the other three accuse node 0, so
// node 0 wedges (queuing a send) and then concedes to the majority. The
// evicted side must fully tear down — groups out of the engine table,
// retired connections closed, failure subscription removed — and count its
// queued send in Stats.Dropped exactly once, no matter how many further
// terminal transitions (Close after eviction) run.
func TestEvictionTearsDownAndCountsDropsOnce(t *testing.T) {
	g := churnGrid(t, 4, 21)
	var ms []*Manager
	queued := false
	ms = churnSessions(t, g, func(who int, s State) {
		if who == 0 && s == StateWedged && !queued {
			queued = true
			if err := ms[0].SendSized(1024); err != nil {
				t.Errorf("send while wedged: %v", err)
			}
		}
	})
	for i := 0; i < 3; i++ {
		if err := ms[0].SendSized(2048); err != nil {
			t.Fatal(err)
		}
	}
	// All accusations land at the same instant: node 0 wedges on its own
	// (local) suspicion of 3 and queues the send before the majority's
	// one-hop-delayed rows accusing node 0 arrive and evict it.
	g.Sim().At(1e-4, func() {
		g.Engine(0).NotifyFailure(3)
		for i := 1; i < 4; i++ {
			g.Engine(i).NotifyFailure(0)
		}
	})
	g.Run()

	if !queued {
		t.Fatal("node 0 never wedged")
	}
	st, err := ms[0].State()
	if st != StateEvicted || !errors.Is(err, ErrEvicted) {
		t.Fatalf("node 0 state = %v (%v), want evicted", st, err)
	}
	assertTornDown(t, 0, ms[0])
	if d := ms[0].Stats().Dropped; d != 1 {
		t.Fatalf("evicted node dropped %d queued sends, want exactly 1", d)
	}
	// A later Close must not recount the (already discarded) queue.
	if err := ms[0].Close(); err != nil {
		t.Fatal(err)
	}
	if d := ms[0].Stats().Dropped; d != 1 {
		t.Fatalf("close after eviction double-counted drops: %d", d)
	}

	// The survivors installed epoch 2; closing them must empty their
	// engines too.
	for i := 1; i < 4; i++ {
		if e := ms[i].Epoch(); e != 2 {
			t.Errorf("survivor %d epoch = %d, want 2", i, e)
		}
		if err := ms[i].Close(); err != nil {
			t.Fatal(err)
		}
		assertTornDown(t, i, ms[i])
	}
}

// TestCloseCountsQueuedSendsAsDropped pins the Close drop path: a root that
// closes while wedged discards its queue and counts it — once.
func TestCloseCountsQueuedSendsAsDropped(t *testing.T) {
	g := churnGrid(t, 4, 22)
	var ms []*Manager
	done := false
	ms = churnSessions(t, g, func(who int, s State) {
		if who == 0 && s == StateWedged && !done {
			done = true
			for i := 0; i < 3; i++ {
				if err := ms[0].SendSized(512); err != nil {
					t.Errorf("send while wedged: %v", err)
				}
			}
			if err := ms[0].Close(); err != nil {
				t.Errorf("close while wedged: %v", err)
			}
		}
	})
	if err := ms[0].SendSized(4096); err != nil {
		t.Fatal(err)
	}
	g.Sim().At(1e-4, func() { g.FailNode(3) })
	g.Run()

	if !done {
		t.Fatal("root never wedged")
	}
	if d := ms[0].Stats().Dropped; d != 3 {
		t.Fatalf("closed-while-wedged root dropped %d, want 3", d)
	}
	if err := ms[0].Close(); err != nil {
		t.Fatal(err)
	}
	if d := ms[0].Stats().Dropped; d != 3 {
		t.Fatalf("second close double-counted drops: %d", d)
	}
	assertTornDown(t, 0, ms[0])
}

// TestSessionChurnLeavesEngineEmpty loops create → send → close across many
// session generations on one set of engines, asserting the engine group
// table returns to zero entries every generation — the group-churn leak
// regression.
func TestSessionChurnLeavesEngineEmpty(t *testing.T) {
	g := churnGrid(t, 3, 23)
	members := []rdma.NodeID{0, 1, 2}
	const generations = 20
	for gen := 0; gen < generations; gen++ {
		id := uint32(600 + gen*8)
		ms := make([]*Manager, 3)
		for i := range ms {
			m, err := New(g.Engine(i), g.Network().Provider(rdma.NodeID(i)),
				Config{ID: id, Members: members, BlockSize: 4096, MetadataOnly: true}, Callbacks{})
			if err != nil {
				t.Fatalf("generation %d node %d: %v", gen, i, err)
			}
			ms[i] = m
		}
		if err := ms[0].SendSized(8192); err != nil {
			t.Fatal(err)
		}
		g.Run()
		for i, m := range ms {
			if got := m.Delivered(); got != 1 {
				t.Fatalf("generation %d node %d delivered %d, want 1", gen, i, got)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			assertTornDown(t, i, m)
		}
		g.Run() // drain the closes' fallout before the next generation
	}
}
