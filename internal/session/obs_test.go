package session

import (
	"testing"
	"time"

	"rdmc/internal/obs"
)

// TestObsDisabledPathAllocatesNothing pins the contract the hot paths rely
// on: with no observer configured (so == nil) the instrumentation guard is a
// single pointer test, and even the enabled path records without allocating
// (events are pointer-free, counters are pre-resolved).
func TestObsDisabledPathAllocatesNothing(t *testing.T) {
	m := &Manager{}
	if allocs := testing.AllocsPerRun(1000, func() {
		if m.so != nil {
			m.so.epochs.Inc()
			m.so.record(0, obs.EvSessionWedge, 1)
		}
	}); allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}

	so := newSessionObs(obs.New(64), 3, testObsID)
	if allocs := testing.AllocsPerRun(1000, func() {
		so.epochs.Inc()
		so.resends.Inc()
		so.recovery.Observe(5)
		so.record(time.Millisecond, obs.EvSessionInstall, 2)
	}); allocs != 0 {
		t.Errorf("enabled path allocates %v per op, want 0", allocs)
	}
}

const testObsID = 42

func BenchmarkSessionObsDisabled(b *testing.B) {
	m := &Manager{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.so != nil {
			m.so.epochs.Inc()
			m.so.record(0, obs.EvSessionWedge, 1)
		}
	}
}

func BenchmarkSessionObsEnabled(b *testing.B) {
	so := newSessionObs(obs.New(1024), 0, testObsID)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		so.epochs.Inc()
		so.record(time.Duration(i), obs.EvSessionResend, int64(i))
	}
}
