package session_test

import (
	"errors"
	"testing"

	"rdmc/internal/rdma"
	"rdmc/internal/session"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
)

const (
	testID    = 100
	blockSize = 4096
	msgBytes  = 32768
)

// node records everything one member's session reports.
type node struct {
	mgr     *session.Manager
	seqs    []uint64
	payload map[uint64]byte // first byte of each delivered message
	epochs  []uint64
	states  []session.State
	onEpoch func(n *node, epoch uint64, members []rdma.NodeID)
	onState func(n *node, s session.State)
}

func testGrid(t *testing.T, n int, seed int64) *simhost.Grid {
	t.Helper()
	g, err := simhost.New(simhost.Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         n,
			LinkBandwidth: 1e9,
			Latency:       1e-6,
			RetryTimeout:  1e-4,
			CPU:           simnet.CPUConfig{Mode: simnet.ModePolling},
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newSessions(t *testing.T, g *simhost.Grid) []*node {
	t.Helper()
	members := make([]rdma.NodeID, g.Nodes())
	for i := range members {
		members[i] = rdma.NodeID(i)
	}
	nodes := make([]*node, g.Nodes())
	for i := range nodes {
		nd := &node{payload: make(map[uint64]byte)}
		cfg := session.Config{
			ID:        testID,
			Members:   members,
			BlockSize: blockSize,
		}
		cbs := session.Callbacks{
			Deliver: func(seq uint64, data []byte, size int) {
				nd.seqs = append(nd.seqs, seq)
				nd.payload[seq] = data[0]
			},
			OnEpoch: func(epoch uint64, mem []rdma.NodeID) {
				nd.epochs = append(nd.epochs, epoch)
				if nd.onEpoch != nil {
					nd.onEpoch(nd, epoch, mem)
				}
			},
			OnState: func(s session.State, err error) {
				nd.states = append(nd.states, s)
				if nd.onState != nil {
					nd.onState(nd, s)
				}
			},
		}
		mgr, err := session.New(g.Engine(i), g.Network().Provider(rdma.NodeID(i)), cfg, cbs)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nd.mgr = mgr
		nodes[i] = nd
	}
	return nodes
}

// msg builds a message whose first byte identifies it.
func msg(tag byte) []byte {
	b := make([]byte, msgBytes)
	b[0] = tag
	return b
}

// checkGapFree asserts a node delivered sequences 0..len-1 in order.
func checkGapFree(t *testing.T, who int, seqs []uint64) {
	t.Helper()
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("node %d: delivery %d has sequence %d (gap or duplicate)", who, i, s)
		}
	}
}

// checkAgreement asserts two nodes delivered identical content for every
// sequence both hold.
func checkAgreement(t *testing.T, a, b *node, ia, ib int) {
	t.Helper()
	for seq, pa := range a.payload {
		if pb, ok := b.payload[seq]; ok && pa != pb {
			t.Fatalf("nodes %d and %d disagree on sequence %d: %#x vs %#x", ia, ib, seq, pa, pb)
		}
	}
}

func TestSessionDeliversInOrderWithoutFailures(t *testing.T) {
	g := testGrid(t, 4, 1)
	nodes := newSessions(t, g)
	const k = 5
	for i := 0; i < k; i++ {
		if err := nodes[0].mgr.Send(msg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	g.Run()
	for i, nd := range nodes {
		if len(nd.seqs) != k {
			t.Fatalf("node %d delivered %d messages, want %d", i, len(nd.seqs), k)
		}
		checkGapFree(t, i, nd.seqs)
		for s := 0; s < k; s++ {
			if nd.payload[uint64(s)] != byte(s) {
				t.Errorf("node %d sequence %d payload = %#x", i, s, nd.payload[uint64(s)])
			}
		}
		if e := nd.mgr.Epoch(); e != 1 {
			t.Errorf("node %d epoch = %d, want 1", i, e)
		}
	}
	if st := nodes[0].mgr.Stats(); st.Resent != 0 || st.Duplicates != 0 {
		t.Errorf("failure-free run recorded resends: %+v", st)
	}
}

func TestSessionNonRootSendRejected(t *testing.T) {
	g := testGrid(t, 2, 1)
	nodes := newSessions(t, g)
	if err := nodes[1].mgr.Send(msg(1)); !errors.Is(err, session.ErrNotRoot) {
		t.Fatalf("non-root send error = %v, want ErrNotRoot", err)
	}
	if err := nodes[0].mgr.Send(nil); err == nil {
		t.Fatal("empty send accepted")
	}
}

func TestSessionRelayCrashRecoversAndResends(t *testing.T) {
	g := testGrid(t, 4, 2)
	nodes := newSessions(t, g)
	const k = 8
	for i := 0; i < k; i++ {
		if err := nodes[0].mgr.Send(msg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The crash instant lands in the window where one survivor has
	// delivered a message the others have not yet — so the re-send both
	// fills a real gap and exercises duplicate suppression.
	g.Sim().At(1.2e-4, func() { g.FailNode(2) })
	g.Run()

	survivors := []int{0, 1, 3}
	for _, i := range survivors {
		nd := nodes[i]
		if len(nd.seqs) != k {
			t.Fatalf("survivor %d delivered %d messages, want %d", i, len(nd.seqs), k)
		}
		checkGapFree(t, i, nd.seqs)
		for s := 0; s < k; s++ {
			if nd.payload[uint64(s)] != byte(s) {
				t.Errorf("survivor %d sequence %d payload = %#x", i, s, nd.payload[uint64(s)])
			}
		}
		if e := nd.mgr.Epoch(); e != 2 {
			t.Errorf("survivor %d epoch = %d, want 2", i, e)
		}
		if got := nd.mgr.Members(); len(got) != 3 {
			t.Errorf("survivor %d view = %v, want 3 members", i, got)
		}
	}
	st := nodes[0].mgr.Stats()
	if st.Resent == 0 {
		t.Error("root re-sent nothing across the view change")
	}
	if st.ResentBytes != st.Resent*msgBytes {
		t.Errorf("resent bytes = %d for %d resends", st.ResentBytes, st.Resent)
	}
	if st.LastRecovery <= 0 {
		t.Error("recovery latency not recorded")
	}
	// At least one survivor had delivered some re-sent prefix already.
	var dups uint64
	for _, i := range survivors {
		dups += nodes[i].mgr.Stats().Duplicates
	}
	if dups == 0 {
		t.Error("no duplicate suppression recorded despite re-sends")
	}
}

func TestSessionRootCrashPromotesNewRootAndStaysLive(t *testing.T) {
	g := testGrid(t, 4, 3)
	nodes := newSessions(t, g)
	const k = 6
	const epilogue = 2
	for i := range nodes {
		nodes[i].onEpoch = func(nd *node, epoch uint64, mem []rdma.NodeID) {
			if epoch > 1 && nd.mgr.IsRoot() {
				for j := 0; j < epilogue; j++ {
					if err := nd.mgr.Send(msg(0xE0 + byte(j))); err != nil {
						t.Errorf("epilogue send: %v", err)
					}
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		if err := nodes[0].mgr.Send(msg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	g.Sim().At(1e-4, func() { g.FailNode(0) })
	g.Run()

	survivors := []int{1, 2, 3}
	ref := nodes[survivors[0]]
	for _, i := range survivors {
		nd := nodes[i]
		checkGapFree(t, i, nd.seqs)
		if len(nd.seqs) != len(ref.seqs) {
			t.Fatalf("survivors delivered different counts: node %d has %d, node %d has %d",
				i, len(nd.seqs), survivors[0], len(ref.seqs))
		}
		checkAgreement(t, nd, ref, i, survivors[0])
		if e := nd.mgr.Epoch(); e != 2 {
			t.Errorf("survivor %d epoch = %d, want 2", i, e)
		}
		if root := nd.mgr.Members()[0]; root == 0 {
			t.Errorf("survivor %d still lists the dead root", i)
		}
	}
	if len(ref.seqs) < epilogue {
		t.Fatalf("survivors delivered %d messages, want at least the %d epilogue sends", len(ref.seqs), epilogue)
	}
	// The tail must be the new root's epilogue — proof the session is live
	// after losing its sender.
	last := ref.payload[uint64(len(ref.seqs)-1)]
	if last != 0xE0+epilogue-1 {
		t.Errorf("last delivered payload = %#x, want epilogue tag %#x", last, 0xE0+epilogue-1)
	}
}

func TestSessionQueuesSendsWhileWedged(t *testing.T) {
	g := testGrid(t, 4, 4)
	nodes := newSessions(t, g)
	const k = 6
	sent := false
	nodes[0].onState = func(nd *node, s session.State) {
		if s == session.StateWedged && !sent {
			sent = true
			if err := nd.mgr.Send(msg(0xAA)); err != nil {
				t.Errorf("send while wedged: %v", err)
			}
		}
	}
	for i := 0; i < k; i++ {
		if err := nodes[0].mgr.Send(msg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	g.Sim().At(1e-4, func() { g.FailNode(3) })
	g.Run()

	if !sent {
		t.Fatal("root never wedged")
	}
	for _, i := range []int{0, 1, 2} {
		nd := nodes[i]
		if len(nd.seqs) != k+1 {
			t.Fatalf("survivor %d delivered %d messages, want %d", i, len(nd.seqs), k+1)
		}
		checkGapFree(t, i, nd.seqs)
		if nd.payload[uint64(k)] != 0xAA {
			t.Errorf("survivor %d final payload = %#x, want the queued send", i, nd.payload[uint64(k)])
		}
	}
}

func TestSessionFalseSuspicionEvictsTheAccused(t *testing.T) {
	g := testGrid(t, 4, 5)
	nodes := newSessions(t, g)
	const k = 4
	for i := 0; i < k; i++ {
		if err := nodes[0].mgr.Send(msg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The network stays healthy; the failure detector simply (wrongly)
	// accuses node 3 on every other node. The majority's verdict must win
	// and node 3 must concede.
	g.Sim().At(1e-4, func() {
		for i := 0; i < 3; i++ {
			g.Engine(i).NotifyFailure(3)
		}
	})
	g.Run()

	for _, i := range []int{0, 1, 2} {
		if e := nodes[i].mgr.Epoch(); e != 2 {
			t.Errorf("survivor %d epoch = %d, want 2", i, e)
		}
		if len(nodes[i].seqs) != k {
			t.Errorf("survivor %d delivered %d, want %d", i, len(nodes[i].seqs), k)
		}
		checkGapFree(t, i, nodes[i].seqs)
	}
	st, err := nodes[3].mgr.State()
	if st != session.StateEvicted || !errors.Is(err, session.ErrEvicted) {
		t.Fatalf("accused node state = %v (%v), want evicted", st, err)
	}
	if err := nodes[3].mgr.Send(msg(1)); !errors.Is(err, session.ErrEvicted) {
		t.Errorf("evicted send error = %v, want ErrEvicted", err)
	}
}

func TestSessionPartitionedMinorityHoldsAPrefix(t *testing.T) {
	g := testGrid(t, 4, 6)
	nodes := newSessions(t, g)
	const k = 8
	for i := 0; i < k; i++ {
		if err := nodes[0].mgr.Send(msg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Cut node 3 off mid-stream without any detector help: only broken
	// in-flight work reveals the partition, on both sides.
	g.Sim().At(1e-4, func() {
		c := g.Cluster()
		for i := 0; i < 3; i++ {
			c.BreakLink(3, simnet.NodeID(i))
			c.BreakLink(simnet.NodeID(i), 3)
		}
	})
	g.Run()

	for _, i := range []int{0, 1, 2} {
		nd := nodes[i]
		if len(nd.seqs) != k {
			t.Fatalf("majority node %d delivered %d messages, want %d", i, len(nd.seqs), k)
		}
		checkGapFree(t, i, nd.seqs)
		if e := nd.mgr.Epoch(); e != 2 {
			t.Errorf("majority node %d epoch = %d, want 2", i, e)
		}
	}
	// The minority holds a consistent gap-free prefix and never installs
	// an epoch of its own.
	m := nodes[3]
	checkGapFree(t, 3, m.seqs)
	if len(m.seqs) > k {
		t.Fatalf("minority delivered %d messages, more than were sent", len(m.seqs))
	}
	checkAgreement(t, m, nodes[0], 3, 0)
	if e := m.mgr.Epoch(); e != 1 {
		t.Errorf("minority epoch = %d — a minority must never install", e)
	}
	if m.mgr.IsRoot() {
		t.Error("minority promoted itself to root")
	}
}

func TestSessionSequentialFailuresReachQuorumFloor(t *testing.T) {
	g := testGrid(t, 5, 7)
	nodes := newSessions(t, g)
	const k = 10
	for i := 0; i < k; i++ {
		if err := nodes[0].mgr.Send(msg(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	g.Sim().At(1e-4, func() { g.FailNode(4) })
	g.Sim().At(3e-4, func() { g.FailNode(3) })
	g.Run()

	for _, i := range []int{0, 1, 2} {
		nd := nodes[i]
		if len(nd.seqs) != k {
			t.Fatalf("survivor %d delivered %d messages, want %d", i, len(nd.seqs), k)
		}
		checkGapFree(t, i, nd.seqs)
		if e := nd.mgr.Epoch(); e != 3 {
			t.Errorf("survivor %d epoch = %d, want 3 after two view changes", i, e)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	g := testGrid(t, 2, 1)
	if _, err := session.New(g.Engine(0), g.Network().Provider(0), session.Config{
		ID: 1, Members: []rdma.NodeID{0}, BlockSize: blockSize,
	}, session.Callbacks{}); err == nil {
		t.Error("single-member session accepted")
	}
	if _, err := session.New(g.Engine(0), g.Network().Provider(0), session.Config{
		ID: 1, Members: []rdma.NodeID{0, 1},
	}, session.Callbacks{}); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestSessionCloseRejectsFurtherSends(t *testing.T) {
	g := testGrid(t, 2, 1)
	nodes := newSessions(t, g)
	if err := nodes[0].mgr.Send(msg(1)); err != nil {
		t.Fatal(err)
	}
	g.Run()
	if err := nodes[0].mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].mgr.Send(msg(2)); !errors.Is(err, session.ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
	if err := nodes[0].mgr.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
}
