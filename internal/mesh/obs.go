package mesh

import (
	"rdmc/internal/core"
	"rdmc/internal/obs"
)

// meshObs counts mesh frames in and out, split by control kind. Counters are
// resolved once (per kind, names like "mesh.tx.ready_block") so the wire
// paths index a fixed array instead of touching the registry.
type meshObs struct {
	tx [core.NumCtrlKinds + 1]*obs.Counter
	rx [core.NumCtrlKinds + 1]*obs.Counter
}

func newMeshObs(r *obs.Registry) *meshObs {
	mo := &meshObs{}
	for k := 1; k <= core.NumCtrlKinds; k++ {
		name := core.CtrlKind(k).String()
		mo.tx[k] = r.Counter("mesh.tx." + name)
		mo.rx[k] = r.Counter("mesh.rx." + name)
	}
	return mo
}

// sent and received tolerate out-of-range kinds (a corrupt frame decodes to
// whatever the byte said) by dropping the count.
func (mo *meshObs) sent(k core.CtrlKind) {
	if mo != nil && k > 0 && int(k) < len(mo.tx) {
		mo.tx[k].Inc()
	}
}

func (mo *meshObs) received(k core.CtrlKind) {
	if mo != nil && k > 0 && int(k) < len(mo.rx) {
		mo.rx[k].Inc()
	}
}
