package mesh

import (
	"encoding/binary"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
)

// Control messages travel as fixed 50-byte frames. CtrlMsg is a flat record
// of small integers, so a hand-rolled codec beats a reflective one on both
// allocation count (zero per message, in both directions) and wire size; the
// control plane sits on every block's critical path (the ready-for-block
// notices of §4.2), so this matters for dataplane overhead.
//
// Layout (big endian):
//
//	off 0  Kind   uint8
//	off 1  flags  uint8 (bit 0: OK)
//	off 2  Group  uint32
//	off 6  Seq    uint32
//	off 10 Size   uint64
//	off 18 Round  uint32
//	off 22 Block  int32 (sign-preserving: replan acks carry -1)
//	off 26 Node   uint32
//	off 30 Total  uint32
//	off 34 Count  uint32
//	off 38 Mask   uint64
//	off 46 BS     uint32
const ctrlWireLen = 50

func encodeCtrl(buf *[ctrlWireLen]byte, m core.CtrlMsg) {
	buf[0] = byte(m.Kind)
	buf[1] = 0
	if m.OK {
		buf[1] = 1
	}
	binary.BigEndian.PutUint32(buf[2:6], uint32(m.Group))
	binary.BigEndian.PutUint32(buf[6:10], uint32(m.Seq))
	binary.BigEndian.PutUint64(buf[10:18], uint64(m.Size))
	binary.BigEndian.PutUint32(buf[18:22], uint32(m.Round))
	binary.BigEndian.PutUint32(buf[22:26], uint32(int32(m.Block)))
	binary.BigEndian.PutUint32(buf[26:30], uint32(m.Node))
	binary.BigEndian.PutUint32(buf[30:34], uint32(m.Total))
	binary.BigEndian.PutUint32(buf[34:38], uint32(m.Count))
	binary.BigEndian.PutUint64(buf[38:46], m.Mask)
	binary.BigEndian.PutUint32(buf[46:50], uint32(m.BS))
}

func decodeCtrl(buf *[ctrlWireLen]byte) core.CtrlMsg {
	return core.CtrlMsg{
		Kind:  core.CtrlKind(buf[0]),
		OK:    buf[1]&1 != 0,
		Group: core.GroupID(binary.BigEndian.Uint32(buf[2:6])),
		Seq:   int(binary.BigEndian.Uint32(buf[6:10])),
		Size:  int64(binary.BigEndian.Uint64(buf[10:18])),
		Round: int(binary.BigEndian.Uint32(buf[18:22])),
		Block: int(int32(binary.BigEndian.Uint32(buf[22:26]))),
		Node:  rdma.NodeID(binary.BigEndian.Uint32(buf[26:30])),
		Total: int(binary.BigEndian.Uint32(buf[30:34])),
		Count: int(binary.BigEndian.Uint32(buf[34:38])),
		Mask:  binary.BigEndian.Uint64(buf[38:46]),
		BS:    int(binary.BigEndian.Uint32(buf[46:50])),
	}
}
