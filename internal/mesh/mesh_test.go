package mesh

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
)

// buildMesh stands up n mesh endpoints on loopback.
func buildMesh(t *testing.T, n int, onDown func(self, peer rdma.NodeID)) []*Mesh {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make(map[rdma.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[rdma.NodeID(i)] = ln.Addr().String()
	}
	meshes := make([]*Mesh, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := Config{
				NodeID:   rdma.NodeID(i),
				Listener: listeners[i],
				Addrs:    addrs,
			}
			if onDown != nil {
				cfg.OnPeerDown = func(peer rdma.NodeID) { onDown(rdma.NodeID(i), peer) }
			}
			meshes[i], errs[i] = New(cfg)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mesh %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			if m != nil {
				_ = m.Close()
			}
		}
	})
	return meshes
}

func TestMeshDeliversInSenderOrder(t *testing.T) {
	meshes := buildMesh(t, 3, nil)
	type rx struct {
		from rdma.NodeID
		msg  core.CtrlMsg
	}
	got := make(chan rx, 100)
	meshes[2].SetHandler(func(from rdma.NodeID, m core.CtrlMsg) {
		got <- rx{from, m}
	})
	for i := 0; i < 20; i++ {
		if err := meshes[0].Send(2, core.CtrlMsg{Kind: core.CtrlPrepare, Group: 1, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		select {
		case r := <-got:
			if r.from != 0 || r.msg.Seq != i {
				t.Fatalf("message %d: from %d seq %d", i, r.from, r.msg.Seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at message %d", i)
		}
	}
}

func TestMeshAllPairsCanTalk(t *testing.T) {
	const n = 4
	meshes := buildMesh(t, n, nil)
	var (
		mu    sync.Mutex
		count int
	)
	for i := 0; i < n; i++ {
		meshes[i].SetHandler(func(from rdma.NodeID, m core.CtrlMsg) {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := meshes[i].Send(rdma.NodeID(j), core.CtrlMsg{Kind: core.CtrlFailure}); err != nil {
				t.Fatalf("%d→%d: %v", i, j, err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := count == n*(n-1)
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", count, n*(n-1))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMeshSendToUnknownPeer(t *testing.T) {
	meshes := buildMesh(t, 2, nil)
	if err := meshes[0].Send(9, core.CtrlMsg{}); err == nil {
		t.Error("send to unknown peer succeeded")
	}
}

func TestMeshPeerDownNotification(t *testing.T) {
	var (
		mu    sync.Mutex
		downs = make(map[string]int)
	)
	meshes := buildMesh(t, 3, func(self, peer rdma.NodeID) {
		mu.Lock()
		downs[fmt.Sprintf("%d<-%d", self, peer)]++
		mu.Unlock()
	})
	_ = meshes[2].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := downs["0<-2"] == 1 && downs["1<-2"] == 1
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("peer-down notifications = %v", downs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Sends to the dead peer now fail, and the notification stays single.
	if err := meshes[0].Send(2, core.CtrlMsg{}); err == nil {
		t.Error("send to dead peer succeeded")
	}
	mu.Lock()
	if downs["0<-2"] != 1 {
		t.Errorf("duplicate peer-down notification: %v", downs)
	}
	mu.Unlock()
}

func TestMeshRequiresListener(t *testing.T) {
	if _, err := New(Config{NodeID: 0}); err == nil {
		t.Error("New without listener succeeded")
	}
}

func TestMeshCloseIsIdempotent(t *testing.T) {
	meshes := buildMesh(t, 2, nil)
	if err := meshes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := meshes[0].Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
