// Package mesh implements RDMC's out-of-band bootstrap network: the full
// N×N set of TCP connections the paper creates during initialization and
// then uses "for RDMA connection setup and failure reporting" (§2). Here it
// carries the engine's control-plane messages (prepare, ready, failure,
// close barrier) and doubles as the failure detector: a broken mesh
// connection reports the peer as failed.
package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/obs"
	"rdmc/internal/rdma"
)

// Config describes one node's mesh endpoint.
type Config struct {
	// NodeID is the local identity.
	NodeID rdma.NodeID
	// Listener accepts mesh connections from higher-id peers.
	Listener net.Listener
	// Addrs maps every node (including this one) to its mesh listen
	// address.
	Addrs map[rdma.NodeID]string
	// OnPeerDown, when non-nil, is invoked once per peer whose mesh
	// connection breaks (the engine's NotifyFailure is the usual target).
	OnPeerDown func(peer rdma.NodeID)
	// DialTimeout bounds each connection attempt; zero selects 2s.
	DialTimeout time.Duration
	// Observer, when non-nil, receives per-kind frame counters
	// ("mesh.tx.<kind>" / "mesh.rx.<kind>") in its metrics registry.
	Observer *obs.Obs
}

// Mesh is the full mesh endpoint of one node. It implements core.Control.
type Mesh struct {
	cfg Config

	obs *meshObs // nil when unobserved; methods are nil-safe

	mu      sync.Mutex
	handler func(from rdma.NodeID, m core.CtrlMsg)
	peers   map[rdma.NodeID]*peerConn
	closed  bool

	wg sync.WaitGroup
}

var _ core.Control = (*Mesh)(nil)

type peerConn struct {
	conn net.Conn
	mu   sync.Mutex // serializes writes (and owns wbuf)
	wbuf [ctrlWireLen]byte
	down atomic.Bool
}

// New builds the mesh: the local node dials every lower-id peer and accepts
// connections from every higher-id peer, blocking until the full mesh is up
// (mirroring the paper's bootstrap step).
func New(cfg Config) (*Mesh, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("mesh: node %d needs a listener", cfg.NodeID)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	m := &Mesh{
		cfg:   cfg,
		peers: make(map[rdma.NodeID]*peerConn),
	}
	if cfg.Observer != nil {
		m.obs = newMeshObs(cfg.Observer.Registry())
	}

	expect := 0
	for id := range cfg.Addrs {
		if id > cfg.NodeID {
			expect++
		}
	}
	accepted := make(chan error, 1)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		accepted <- m.acceptN(expect)
	}()

	for id, addr := range cfg.Addrs {
		if id >= cfg.NodeID {
			continue
		}
		if err := m.dialPeer(id, addr); err != nil {
			_ = m.Close()
			return nil, err
		}
	}
	if err := <-accepted; err != nil {
		_ = m.Close()
		return nil, err
	}

	// The mesh is complete: start one reader per peer.
	m.mu.Lock()
	for id, pc := range m.peers {
		id, pc := id, pc
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.readLoop(id, pc)
		}()
	}
	m.mu.Unlock()
	return m, nil
}

func (m *Mesh) dialPeer(id rdma.NodeID, addr string) error {
	var (
		conn net.Conn
		err  error
	)
	for attempt := 0; attempt < 50; attempt++ {
		conn, err = net.DialTimeout("tcp", addr, m.cfg.DialTimeout)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("mesh: dial peer %d at %s: %w", id, addr, err)
	}
	var hs [4]byte
	binary.BigEndian.PutUint32(hs[:], uint32(m.cfg.NodeID))
	if _, err := conn.Write(hs[:]); err != nil {
		_ = conn.Close()
		return fmt.Errorf("mesh: handshake with peer %d: %w", id, err)
	}
	m.addPeer(id, conn)
	return nil
}

func (m *Mesh) acceptN(n int) error {
	for i := 0; i < n; i++ {
		conn, err := m.cfg.Listener.Accept()
		if err != nil {
			return fmt.Errorf("mesh: accept: %w", err)
		}
		var hs [4]byte
		if _, err := io.ReadFull(conn, hs[:]); err != nil {
			_ = conn.Close()
			return fmt.Errorf("mesh: inbound handshake: %w", err)
		}
		m.addPeer(rdma.NodeID(binary.BigEndian.Uint32(hs[:])), conn)
	}
	return nil
}

func (m *Mesh) addPeer(id rdma.NodeID, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers[id] = &peerConn{conn: conn}
}

// Send implements core.Control.
func (m *Mesh) Send(to rdma.NodeID, msg core.CtrlMsg) error {
	m.mu.Lock()
	pc := m.peers[to]
	m.mu.Unlock()
	if pc == nil {
		return fmt.Errorf("mesh: unknown peer %d", to)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.down.Load() {
		return fmt.Errorf("mesh: peer %d is down", to)
	}
	encodeCtrl(&pc.wbuf, msg)
	if _, err := pc.conn.Write(pc.wbuf[:]); err != nil {
		m.peerDown(to, pc)
		return fmt.Errorf("mesh: send to peer %d: %w", to, err)
	}
	m.obs.sent(msg.Kind)
	return nil
}

// SetHandler implements core.Control.
func (m *Mesh) SetHandler(fn func(from rdma.NodeID, m core.CtrlMsg)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handler = fn
}

func (m *Mesh) readLoop(id rdma.NodeID, pc *peerConn) {
	var rbuf [ctrlWireLen]byte
	// A burst of control messages — a window's worth of credit notices, a
	// round of readies — often sits queued in the socket; the buffered
	// reader drains the burst with one syscall instead of one per 38-byte
	// frame. The loop is the connection's only reader, so buffering cannot
	// strand bytes another reader needs.
	br := bufio.NewReaderSize(pc.conn, 64*ctrlWireLen)
	for {
		if _, err := io.ReadFull(br, rbuf[:]); err != nil {
			m.peerDown(id, pc)
			return
		}
		msg := decodeCtrl(&rbuf)
		m.obs.received(msg.Kind)
		m.mu.Lock()
		h := m.handler
		m.mu.Unlock()
		if h != nil {
			h(id, msg)
		}
	}
}

// peerDown marks the connection dead (once) and reports the failure. The
// notification runs on its own goroutine: peerDown can fire from inside
// Mesh.Send while the caller (typically the engine, relaying a failure)
// holds its own locks, and OnPeerDown re-enters the engine.
func (m *Mesh) peerDown(id rdma.NodeID, pc *peerConn) {
	already := pc.down.Swap(true)
	m.mu.Lock()
	notify := !already && !m.closed && m.cfg.OnPeerDown != nil
	if notify {
		// Register under the lock so Close (which flips closed under the
		// same lock before waiting) cannot race the Add with its Wait.
		m.wg.Add(1)
	}
	closed := m.closed
	m.mu.Unlock()
	if already || closed {
		return
	}
	_ = pc.conn.Close()
	if notify {
		go func() {
			defer m.wg.Done()
			m.cfg.OnPeerDown(id)
		}()
	}
}

// Close tears the mesh down.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	peers := make([]*peerConn, 0, len(m.peers))
	for _, pc := range m.peers {
		peers = append(peers, pc)
	}
	m.mu.Unlock()

	err := m.cfg.Listener.Close()
	for _, pc := range peers {
		_ = pc.conn.Close()
	}
	m.wg.Wait()
	return err
}
