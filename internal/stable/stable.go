// Package stable layers Derecho-style stable delivery over RDMC, following
// the paper's §4.6 sketch: "On reception of an RDMC message, Derecho buffers
// it briefly. Delivery occurs only after every receiver has a copy of the
// message, which receivers discover by monitoring the status table."
//
// Each member publishes its received-message count in a shared state table
// (package sst, one-sided writes). A message becomes *stable* — and is only
// then handed to the application — once the minimum count across all members
// passes it. The result is all-or-nothing delivery against receiver crashes
// after stability: if any member delivered message k, every surviving member
// holds messages 0..k.
package stable

import (
	"fmt"
	"sync"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
	"rdmc/internal/sst"
)

// statusCol is the table column carrying each member's received count.
const statusCol = 0

// Callbacks notify the application.
type Callbacks struct {
	// Deliver runs, in sequence order, once a message is stable: every
	// member of the group holds it.
	Deliver func(seq int, data []byte, size int)
	// Failure runs at most once if the group fails; buffered unstable
	// messages are discarded.
	Failure func(err error)
}

// Config carries the underlying RDMC group parameters.
type Config struct {
	// BlockSize is the RDMC block granularity (zero: 1 MiB).
	BlockSize int
	// Generator picks the multicast schedule (nil: binomial pipeline).
	Generator schedule.Generator
	// Incoming allocates receive buffers, as in core.Callbacks; nil runs
	// metadata-only.
	Incoming func(size int) []byte
}

// Group is an RDMC group with a stability barrier in front of delivery.
type Group struct {
	mu       sync.Mutex
	inner    *core.Group
	table    *sst.Table
	cbs      Callbacks
	buffered map[int]bufferedMsg
	received uint64 // local receive counter, published to the table
	next     int    // next sequence to deliver
	failed   bool
}

type bufferedMsg struct {
	data []byte
	size int
}

// New creates the local endpoint of a stable group. Every member calls New
// with identical id and member lists. The provider must be the same one the
// engine runs on (the table registers memory and queue pairs beside RDMC's).
func New(engine *core.Engine, provider rdma.Provider, id core.GroupID, members []rdma.NodeID, cfg Config, cbs Callbacks) (*Group, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1 << 20
	}
	g := &Group{
		cbs:      cbs,
		buffered: make(map[int]bufferedMsg),
	}

	table, err := sst.New(provider, uint32(id), members, 1, func(row, col int) { g.tryDeliver() })
	if err != nil {
		return nil, fmt.Errorf("stable: status table: %w", err)
	}
	g.table = table

	inner, err := engine.CreateGroup(id, members, core.GroupConfig{
		BlockSize: cfg.BlockSize,
		Generator: cfg.Generator,
		Callbacks: core.Callbacks{
			Incoming:   cfg.Incoming,
			Completion: g.onReceive,
			Failure:    g.onFailure,
		},
	})
	if err != nil {
		return nil, err
	}
	g.inner = inner
	return g, nil
}

// Rank returns the local rank; rank 0 is the sender.
func (g *Group) Rank() int { return g.inner.Rank() }

// Send multicasts a message (root only). Delivery callbacks fire only after
// the message is stable everywhere.
func (g *Group) Send(data []byte) error { return g.inner.Send(data) }

// SendSized multicasts a metadata-only message.
func (g *Group) SendSized(size int) error { return g.inner.SendSized(size) }

// Delivered returns the number of locally delivered (stable) messages.
func (g *Group) Delivered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.next
}

// Destroy tears down the underlying RDMC group (see core.Group.Destroy).
func (g *Group) Destroy(done func(error)) { g.inner.Destroy(done) }

// onReceive buffers a locally complete RDMC message and publishes the new
// receive count to the status table.
func (g *Group) onReceive(seq int, data []byte, size int) {
	g.mu.Lock()
	if g.failed {
		g.mu.Unlock()
		return
	}
	g.buffered[seq] = bufferedMsg{data: data, size: size}
	if c := uint64(seq + 1); c > g.received {
		g.received = c
	}
	received := g.received
	g.mu.Unlock()

	// Publishing outside the lock: the table pushes one-sided writes to
	// every member and updates the local replica.
	_ = g.table.Set(statusCol, received)
	g.tryDeliver()
}

// tryDeliver hands over every buffered message below the stable frontier.
func (g *Group) tryDeliver() {
	frontier := g.table.ColumnMin(statusCol)
	var ready []struct {
		seq int
		msg bufferedMsg
	}
	g.mu.Lock()
	for !g.failed && uint64(g.next) < frontier {
		msg, ok := g.buffered[g.next]
		if !ok {
			break
		}
		delete(g.buffered, g.next)
		ready = append(ready, struct {
			seq int
			msg bufferedMsg
		}{g.next, msg})
		g.next++
	}
	g.mu.Unlock()
	if g.cbs.Deliver != nil {
		for _, r := range ready {
			g.cbs.Deliver(r.seq, r.msg.data, r.msg.size)
		}
	}
}

// onFailure discards unstable messages and reports the failure.
func (g *Group) onFailure(err error) {
	g.mu.Lock()
	g.failed = true
	dropped := len(g.buffered)
	g.buffered = make(map[int]bufferedMsg)
	g.mu.Unlock()
	if g.cbs.Failure != nil {
		g.cbs.Failure(fmt.Errorf("stable: %d unstable messages discarded: %w", dropped, err))
	}
}
