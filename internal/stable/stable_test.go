package stable_test

import (
	"strings"
	"testing"

	"rdmc/internal/rdma"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
	"rdmc/internal/stable"
)

type deliveryLog struct {
	seqs     []int
	at       []float64 // virtual delivery times
	failures []error
}

func build(t *testing.T, n int) (*simhost.Grid, []*stable.Group, []*deliveryLog) {
	t.Helper()
	grid, err := simhost.New(simhost.Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         n,
			LinkBandwidth: 12.5e9,
			Latency:       1.5e-6,
			CPU:           simnet.DefaultCPUConfig(),
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	members := make([]rdma.NodeID, n)
	for i := range members {
		members[i] = rdma.NodeID(i)
	}
	groups := make([]*stable.Group, n)
	logs := make([]*deliveryLog, n)
	for i := 0; i < n; i++ {
		log := &deliveryLog{}
		logs[i] = log
		g, err := stable.New(grid.Engine(i), grid.Network().Provider(rdma.NodeID(i)), 1, members,
			stable.Config{BlockSize: 1 << 20},
			stable.Callbacks{
				Deliver: func(seq int, _ []byte, _ int) {
					log.seqs = append(log.seqs, seq)
					log.at = append(log.at, grid.Sim().Now())
				},
				Failure: func(err error) { log.failures = append(log.failures, err) },
			})
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	return grid, groups, logs
}

func TestStableDeliveryReachesEveryone(t *testing.T) {
	grid, groups, logs := build(t, 4)
	for i := 0; i < 3; i++ {
		if err := groups[0].SendSized(8 << 20); err != nil {
			t.Fatal(err)
		}
	}
	grid.Run()
	for i, log := range logs {
		if len(log.seqs) != 3 {
			t.Fatalf("node %d delivered %v", i, log.seqs)
		}
		for want, got := range log.seqs {
			if got != want {
				t.Fatalf("node %d out of order: %v", i, log.seqs)
			}
		}
		if groups[i].Delivered() != 3 {
			t.Errorf("node %d Delivered() = %d", i, groups[i].Delivered())
		}
	}
}

// TestDeliveryWaitsForStability is the §4.6 semantics check: no member may
// deliver a message before the last member has received it.
func TestDeliveryWaitsForStability(t *testing.T) {
	grid, groups, logs := build(t, 8)
	if err := groups[0].SendSized(64 << 20); err != nil {
		t.Fatal(err)
	}
	grid.Run()

	// The earliest delivery anywhere must not precede the time the slowest
	// member finished receiving. RDMC local completions are spread out;
	// stability compresses deliveries to (just after) the last one.
	var lastReceive float64
	for _, log := range logs {
		if len(log.at) != 1 {
			t.Fatalf("deliveries = %v", log.at)
		}
		if log.at[0] > lastReceive {
			lastReceive = log.at[0]
		}
	}
	for i, log := range logs {
		// Every delivery must happen within a whisker (control latency,
		// not block time) of the global stability point.
		if lastReceive-log.at[0] > 1e-3 {
			t.Errorf("node %d delivered %.3fms before global stability", i, (lastReceive-log.at[0])*1e3)
		}
	}
}

func TestFailureDiscardsUnstableMessages(t *testing.T) {
	grid, groups, logs := build(t, 4)
	if err := groups[0].SendSized(512 << 20); err != nil { // long transfer
		t.Fatal(err)
	}
	grid.Sim().After(0.005, func() { grid.FailNode(2) })
	grid.Run()
	for i, log := range logs {
		if i == 2 {
			continue
		}
		if len(log.seqs) != 0 {
			t.Errorf("node %d delivered unstable message", i)
		}
		if len(log.failures) != 1 {
			t.Fatalf("node %d failures = %v", i, log.failures)
		}
		if !strings.Contains(log.failures[0].Error(), "unstable") {
			t.Errorf("failure message = %v", log.failures[0])
		}
	}
}

func TestOnlyRootMaySend(t *testing.T) {
	grid, groups, _ := build(t, 3)
	defer grid.Run()
	if err := groups[1].SendSized(100); err == nil {
		t.Error("non-root send succeeded")
	}
	if groups[1].Rank() != 1 {
		t.Errorf("rank = %d", groups[1].Rank())
	}
}
