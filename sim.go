package rdmc

import (
	"time"

	"rdmc/internal/rdma"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
)

// SimConfig describes a simulated cluster. The defaults model the paper's
// Fractus testbed: 100 Gb/s full-duplex NICs with full bisection bandwidth.
type SimConfig struct {
	// Nodes is the cluster size (required).
	Nodes int
	// LinkGbps is the per-direction NIC bandwidth; zero selects 100.
	LinkGbps float64
	// LatencyMicros is the one-way message latency; zero selects 1.5 µs.
	LatencyMicros float64
	// RackSize, when non-zero, arranges nodes into racks behind a shared
	// TOR trunk of TrunkGbps per direction (the paper's Apt cluster has
	// an oversubscribed TOR that degrades to ≈16 Gb/s under load).
	RackSize  int
	TrunkGbps float64
	// CompletionMode selects how simulated completions reach software:
	// hybrid polling/interrupts (default, RDMC's scheme), pure polling,
	// or pure interrupts (§5.2.3).
	CompletionMode CompletionMode
	// Seed fixes the virtual run; equal seeds give identical runs.
	Seed int64
	// Offload enables CORE-Direct-style NIC offload (Figure 12).
	Offload bool
	// Observer, when non-nil, instruments every node in the cluster (see
	// Observer). Events are stamped in virtual time, so a Chrome trace of a
	// simulated run shows the modelled timeline, not wall time.
	Observer *Observer
}

// CompletionMode mirrors the paper's completion-delivery options.
type CompletionMode = simnet.CompletionMode

// Completion modes for SimConfig.
const (
	ModeHybrid    = simnet.ModeHybrid
	ModePolling   = simnet.ModePolling
	ModeInterrupt = simnet.ModeInterrupt
)

// SimCluster is a deterministic virtual-time deployment of RDMC nodes. All
// activity happens by advancing the virtual clock with Run or RunUntil; the
// cluster is single-threaded and not safe for concurrent use.
type SimCluster struct {
	grid  *simhost.Grid
	nodes []*Node
}

// NewSimCluster builds a simulated deployment.
func NewSimCluster(cfg SimConfig) (*SimCluster, error) {
	if cfg.LinkGbps == 0 {
		cfg.LinkGbps = 100
	}
	if cfg.LatencyMicros == 0 {
		cfg.LatencyMicros = 1.5
	}
	cpu := simnet.DefaultCPUConfig()
	if cfg.CompletionMode != 0 {
		cpu.Mode = cfg.CompletionMode
	}
	grid, err := simhost.New(simhost.Config{
		Cluster: simnet.ClusterConfig{
			Nodes:          cfg.Nodes,
			LinkBandwidth:  cfg.LinkGbps * 1e9 / 8,
			Latency:        cfg.LatencyMicros * 1e-6,
			CPU:            cpu,
			RackSize:       cfg.RackSize,
			TrunkBandwidth: cfg.TrunkGbps * 1e9 / 8,
		},
		Seed:     cfg.Seed,
		Offload:  cfg.Offload,
		Observer: cfg.Observer.sink(),
	})
	if err != nil {
		return nil, err
	}
	c := &SimCluster{grid: grid}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{
			engine:   grid.Engine(i),
			id:       i,
			provider: grid.Network().Provider(rdma.NodeID(i)),
			observer: cfg.Observer.sink(),
		})
	}
	return c, nil
}

// Node returns the i-th simulated node.
func (c *SimCluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the cluster size.
func (c *SimCluster) Nodes() int { return len(c.nodes) }

// Run drives the virtual clock until no work remains and returns the final
// virtual time.
func (c *SimCluster) Run() time.Duration {
	c.grid.Run()
	return c.grid.Sim().NowDuration()
}

// RunUntil drives the virtual clock to the given time, reporting whether all
// work drained before it.
func (c *SimCluster) RunUntil(t time.Duration) bool {
	return c.grid.RunUntil(t.Seconds())
}

// Now returns the current virtual time.
func (c *SimCluster) Now() time.Duration { return c.grid.Sim().NowDuration() }

// At schedules fn at a virtual time (for failure injection and workload
// generation inside the simulation).
func (c *SimCluster) At(t time.Duration, fn func()) {
	c.grid.Sim().At(t.Seconds(), fn)
}

// FailNode crashes a node at the current virtual time: its links break and
// survivors' failure detectors fire.
func (c *SimCluster) FailNode(i int) { c.grid.FailNode(i) }

// BreakLink severs the directed link from src to dst at the current virtual
// time: in-flight transfers on it fail after the retry timeout, and no
// failure detector fires — partition experiments drive suspicion purely
// through broken transfers (or NotifyFailure below).
func (c *SimCluster) BreakLink(src, dst int) {
	c.grid.Cluster().BreakLink(simnet.NodeID(src), simnet.NodeID(dst))
}

// RestoreLink undoes BreakLink. Healed links carry new connections; queue
// pairs that broke while the link was down stay broken, as on real RC
// hardware.
func (c *SimCluster) RestoreLink(src, dst int) {
	c.grid.Cluster().RestoreLink(simnet.NodeID(src), simnet.NodeID(dst))
}

// RestoreNode undoes FailNode's link damage (the node's engine state is NOT
// resurrected — a restarted process would rejoin with fresh state).
func (c *SimCluster) RestoreNode(i int) {
	c.grid.Cluster().RestoreNode(simnet.NodeID(i))
}

// NotifyFailure injects a failure-detector verdict on node i's engine: every
// group and session containing the accused reacts as if the bootstrap mesh
// had reported it down.
func (c *SimCluster) NotifyFailure(i, accused int) {
	c.grid.Engine(i).NotifyFailure(rdma.NodeID(accused))
}

// SetLinkBandwidthGbps overrides the capacity of the directed link from src
// to dst (the §4.5 slow-link experiments); zero restores the default.
func (c *SimCluster) SetLinkBandwidthGbps(src, dst int, gbps float64) {
	c.grid.Cluster().SetLinkBandwidth(simnet.NodeID(src), simnet.NodeID(dst), gbps*1e9/8)
}

// Grid exposes the underlying simulation for advanced studies (CPU stats,
// scheduling-delay injection). Most callers never need it.
func (c *SimCluster) Grid() *simhost.Grid { return c.grid }
