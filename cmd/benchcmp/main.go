// Command benchcmp compares two Go benchmark result sets and prints a
// benchstat-style delta table — old vs new time/op, throughput, and
// allocations per benchmark — without pulling in golang.org/x/perf. It
// exists so the committed send-window baseline (BENCH_sendwindow.json) can
// gate dataplane work: run the sweep, compare against the baseline, and
// read the regression or the win off one table.
//
// Both inputs accept either format the toolchain produces:
//
//   - plain `go test -bench` text (lines starting with "Benchmark"), or
//   - `go test -json` event streams (test2json), whose Output events wrap
//     the same lines.
//
// Usage:
//
//	benchcmp -old BENCH_sendwindow.json -new bench_new.txt [-filter regexp] [-fail-over pct]
//	         [-json delta.json] [-trajectory BENCH_trajectory.json] [-label v1.2]
//
// With -fail-over N the exit status is 1 when any benchmark's time/op
// regressed by more than N percent — leave it unset (0) for report-only use
// in CI.
//
// -json writes the same comparison as a machine-readable document beside
// the text table; -trajectory appends that document as one record to a
// growing JSON-array log (created if missing), which is how the committed
// BENCH_trajectory.json accumulates a release-over-release performance
// history that tooling can plot without scraping tables.
//
// With -trend the tool reads that trajectory log instead of comparing two
// result sets, and renders the history as a markdown table — first and
// latest time/op per benchmark, the overall change, and a sparkline across
// every record:
//
//	benchcmp -trend [-trajectory BENCH_trajectory.json] [-filter regexp] [-out TREND.md]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// result aggregates every sample of one benchmark name.
type result struct {
	name    string
	nsOp    []float64
	mbs     []float64
	bOp     []float64
	allocOp []float64
}

func mean(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), true
}

// parseFile reads benchmark lines from either plain bench output or a
// test2json stream.
func parseFile(path string) (map[string]*result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	results := make(map[string]*result)
	var order []string
	consume := func(line string) {
		name, r, ok := parseBenchLine(line)
		if !ok {
			return
		}
		agg := results[name]
		if agg == nil {
			agg = &result{name: name}
			results[name] = agg
			order = append(order, name)
		}
		agg.nsOp = append(agg.nsOp, r.nsOp...)
		agg.mbs = append(agg.mbs, r.mbs...)
		agg.bOp = append(agg.bOp, r.bOp...)
		agg.allocOp = append(agg.allocOp, r.allocOp...)
	}

	// test2json splits one benchmark result across Output events — the
	// name-bearing fragment ends in a tab, the measurements arrive in a
	// later event — so Output payloads are reassembled into lines before
	// parsing rather than treated one event at a time.
	var pending strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Action string
				Output string
			}
			if json.Unmarshal([]byte(line), &ev) != nil || ev.Action != "output" {
				continue
			}
			pending.WriteString(ev.Output)
			for {
				buffered := pending.String()
				nl := strings.IndexByte(buffered, '\n')
				if nl < 0 {
					break
				}
				consume(buffered[:nl])
				pending.Reset()
				pending.WriteString(buffered[nl+1:])
			}
			continue
		}
		consume(line)
	}
	if pending.Len() > 0 {
		consume(pending.String())
	}
	return results, order, sc.Err()
}

// parseBenchLine decodes one `BenchmarkName  N  1234 ns/op  ...` line. The
// name's trailing -P GOMAXPROCS suffix is kept: it is part of the identity.
func parseBenchLine(line string) (string, *result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false // e.g. a bare "BenchmarkFoo" progress line
	}
	r := &result{name: fields[0]}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsOp = append(r.nsOp, v)
		case "MB/s":
			r.mbs = append(r.mbs, v)
		case "B/op":
			r.bOp = append(r.bOp, v)
		case "allocs/op":
			r.allocOp = append(r.allocOp, v)
		}
	}
	if len(r.nsOp) == 0 {
		return "", nil, false
	}
	return r.name, r, true
}

// deltaEntry is one benchmark's comparison in the machine-readable output.
// Pointer fields are null when the side is missing (status "gone"/"new").
type deltaEntry struct {
	Name        string   `json:"name"`
	Status      string   `json:"status"` // "compared", "gone", or "new"
	OldNsOp     *float64 `json:"old_ns_op,omitempty"`
	NewNsOp     *float64 `json:"new_ns_op,omitempty"`
	DeltaPct    *float64 `json:"delta_pct,omitempty"`
	OldAllocsOp *float64 `json:"old_allocs_op,omitempty"`
	NewAllocsOp *float64 `json:"new_allocs_op,omitempty"`
}

// deltaReport is the machine-readable form of one benchcmp run — the -json
// document and the record -trajectory appends.
type deltaReport struct {
	Label      string       `json:"label,omitempty"`
	RecordedAt string       `json:"recorded_at"`
	Old        string       `json:"old"`
	New        string       `json:"new"`
	Benchmarks []deltaEntry `json:"benchmarks"`
}

// sparkRunes are the eight levels a trend sparkline draws with; a record
// where the benchmark is absent renders as '·'.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline maps a series of ns/op samples (NaN = missing) onto the block
// glyph scale, min to max. A flat series draws the lowest glyph: the
// interesting signal is variation, not level.
func sparkline(samples []float64) string {
	lo, hi := 0.0, 0.0
	first := true
	for _, s := range samples {
		if s != s { // NaN: benchmark absent from this record
			continue
		}
		if first || s < lo {
			lo = s
		}
		if first || s > hi {
			hi = s
		}
		first = false
	}
	var b strings.Builder
	for _, s := range samples {
		if s != s {
			b.WriteRune('·')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((s - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// trendReport renders the trajectory log as a markdown document: one table
// row per benchmark with its first and latest time/op, the overall change,
// and a sparkline over every record — the release-over-release view the
// per-PR delta table cannot give.
func trendReport(records []deltaReport, re *regexp.Regexp) string {
	var b strings.Builder
	b.WriteString("# Benchmark trend\n\n")
	if len(records) == 0 {
		b.WriteString("(empty trajectory)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d records, %s (%s) to %s (%s)\n\n",
		len(records),
		orLocal(records[0].Label), day(records[0].RecordedAt),
		orLocal(records[len(records)-1].Label), day(records[len(records)-1].RecordedAt))

	// Benchmarks appear in first-seen order across records; each series
	// holds one ns/op sample per record (NaN where the record lacks it).
	series := make(map[string][]float64)
	var order []string
	for i, rec := range records {
		for _, e := range rec.Benchmarks {
			ns := e.NewNsOp
			if ns == nil {
				ns = e.OldNsOp // status "gone": the baseline side is the sample
			}
			if ns == nil {
				continue
			}
			s := series[e.Name]
			if s == nil {
				s = make([]float64, len(records))
				for j := range s {
					s[j] = nan()
				}
				series[e.Name] = s
				order = append(order, e.Name)
			}
			s[i] = *ns
		}
	}

	b.WriteString("| benchmark | first | latest | change | trend |\n")
	b.WriteString("|---|---|---|---|---|\n")
	rows := 0
	for _, name := range order {
		if re != nil && !re.MatchString(name) {
			continue
		}
		s := series[name]
		first, last := nan(), nan()
		for _, v := range s {
			if v != v {
				continue
			}
			if first != first {
				first = v
			}
			last = v
		}
		if first != first {
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			name, fmtNs(first), fmtNs(last), fmtDelta(first, last), sparkline(s))
		rows++
	}
	if rows == 0 {
		b.WriteString("| (no benchmarks matched) | | | | |\n")
	}
	return b.String()
}

func nan() float64 { return math.NaN() }

func orLocal(label string) string {
	if label == "" {
		return "unlabeled"
	}
	return label
}

// day trims an RFC3339 timestamp to its date.
func day(ts string) string {
	if t, err := time.Parse(time.RFC3339, ts); err == nil {
		return t.Format("2006-01-02")
	}
	return ts
}

// appendTrajectory adds one record to a JSON-array log file, creating the
// file when absent. The whole array is rewritten — the log is small (one
// record per release) and staying a valid JSON document beats an
// append-only format that needs custom framing.
func appendTrajectory(path string, rec deltaReport) error {
	var records []deltaReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("existing %s is not a benchcmp trajectory: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	records = append(records, rec)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtDelta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f%%", (new-old)/old*100)
}

func main() {
	oldPath := flag.String("old", "BENCH_sendwindow.json", "baseline results (bench text or test2json)")
	newPath := flag.String("new", "", "fresh results to compare (bench text or test2json)")
	filter := flag.String("filter", "", "only compare benchmarks matching this regexp")
	failOver := flag.Float64("fail-over", 0, "exit 1 if any time/op regression exceeds this percentage (0 = report only)")
	jsonPath := flag.String("json", "", "also write the comparison as JSON to this file")
	trajectory := flag.String("trajectory", "", "append the comparison to this JSON-array trajectory log")
	label := flag.String("label", "", "label for the JSON/trajectory record (e.g. a version or commit)")
	trend := flag.Bool("trend", false, "render the trajectory log as a markdown trend report instead of comparing")
	outPath := flag.String("out", "", "with -trend, also write the report to this file")
	flag.Parse()

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: bad -filter: %v\n", err)
			os.Exit(2)
		}
	}

	if *trend {
		path := *trajectory
		if path == "" {
			path = "BENCH_trajectory.json"
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
			os.Exit(2)
		}
		var records []deltaReport
		if err := json.Unmarshal(data, &records); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %s is not a benchcmp trajectory: %v\n", path, err)
			os.Exit(2)
		}
		report := trendReport(records, re)
		fmt.Print(report)
		if *outPath != "" {
			if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchcmp: write %s: %v\n", *outPath, err)
				os.Exit(2)
			}
		}
		return
	}

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		flag.Usage()
		os.Exit(2)
	}

	oldR, oldOrder, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	newR, newOrder, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	// Rows follow the baseline's order; benchmarks only present on one side
	// are listed afterwards so they are visible rather than dropped.
	names := append([]string(nil), oldOrder...)
	extra := make([]string, 0)
	for _, n := range newOrder {
		if _, ok := oldR[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-55s %12s %12s %9s %14s %9s\n", "benchmark", "old time/op", "new time/op", "delta", "allocs/op", "delta")
	var worst float64
	var worstName string
	var entries []deltaEntry
	rows := 0
	for _, name := range names {
		if re != nil && !re.MatchString(name) {
			continue
		}
		o, n := oldR[name], newR[name]
		oldNs, hasOld := 0.0, false
		newNs, hasNew := 0.0, false
		if o != nil {
			oldNs, hasOld = mean(o.nsOp)
		}
		if n != nil {
			newNs, hasNew = mean(n.nsOp)
		}
		switch {
		case hasOld && hasNew:
			oa, _ := mean(o.allocOp)
			na, _ := mean(n.allocOp)
			fmt.Fprintf(w, "%-55s %12s %12s %9s %6.0f → %5.0f %9s\n",
				name, fmtNs(oldNs), fmtNs(newNs), fmtDelta(oldNs, newNs), oa, na, fmtDelta(oa, na))
			d := (newNs - oldNs) / oldNs * 100
			if d > worst {
				worst, worstName = d, name
			}
			entries = append(entries, deltaEntry{
				Name: name, Status: "compared",
				OldNsOp: &oldNs, NewNsOp: &newNs, DeltaPct: &d,
				OldAllocsOp: &oa, NewAllocsOp: &na,
			})
		case hasOld:
			fmt.Fprintf(w, "%-55s %12s %12s %9s\n", name, fmtNs(oldNs), "-", "gone")
			entries = append(entries, deltaEntry{Name: name, Status: "gone", OldNsOp: &oldNs})
		case hasNew:
			fmt.Fprintf(w, "%-55s %12s %12s %9s\n", name, "-", fmtNs(newNs), "new")
			entries = append(entries, deltaEntry{Name: name, Status: "new", NewNsOp: &newNs})
		default:
			continue
		}
		rows++
	}
	if rows == 0 {
		fmt.Fprintln(w, "(no benchmarks matched)")
	}
	if *jsonPath != "" || *trajectory != "" {
		rec := deltaReport{
			Label:      *label,
			RecordedAt: time.Now().UTC().Format(time.RFC3339),
			Old:        *oldPath,
			New:        *newPath,
			Benchmarks: entries,
		}
		if *jsonPath != "" {
			out, err := json.MarshalIndent(rec, "", "  ")
			if err == nil {
				err = os.WriteFile(*jsonPath, append(out, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchcmp: write %s: %v\n", *jsonPath, err)
				w.Flush()
				os.Exit(2)
			}
		}
		if *trajectory != "" {
			if err := appendTrajectory(*trajectory, rec); err != nil {
				fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
				w.Flush()
				os.Exit(2)
			}
		}
	}
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(w, "\nFAIL: %s regressed %.2f%% (threshold %.2f%%)\n", worstName, worst, *failOver)
		w.Flush()
		os.Exit(1)
	}
}
