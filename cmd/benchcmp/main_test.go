package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLinePlain(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkSendWindow/tcpnic/size=16MB/w=4 \t       5\t   5318813 ns/op\t        3154.71 MB/s\t  373120 B/op\t     147 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if name != "BenchmarkSendWindow/tcpnic/size=16MB/w=4" {
		t.Fatalf("name = %q", name)
	}
	if len(r.nsOp) != 1 || r.nsOp[0] != 5318813 {
		t.Fatalf("ns/op = %v", r.nsOp)
	}
	if len(r.mbs) != 1 || r.mbs[0] != 3154.71 {
		t.Fatalf("MB/s = %v", r.mbs)
	}
	if len(r.bOp) != 1 || r.bOp[0] != 373120 {
		t.Fatalf("B/op = %v", r.bOp)
	}
	if len(r.allocOp) != 1 || r.allocOp[0] != 147 {
		t.Fatalf("allocs/op = %v", r.allocOp)
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkSendWindow/tcpnic/size=16MB/w=4",       // progress line, no fields
		"goos: linux",                                    // metadata
		"PASS",                                           // terminator
		"BenchmarkFoo \t notanumber \t 123 ns/op",        // bad iteration count
		"ok  \trdmc\t12.3s",                              // summary
		"BenchmarkBar \t 5 \t some trailing words",       // no ns/op pair
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFilePlainText(t *testing.T) {
	p := writeTemp(t, "bench.txt", `goos: linux
goarch: amd64
BenchmarkA/x=1 	 10	 100 ns/op	 8 B/op	 1 allocs/op
BenchmarkA/x=1 	 10	 300 ns/op	 8 B/op	 1 allocs/op
BenchmarkB 	 5	 50 ns/op
PASS
`)
	results, order, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "BenchmarkA/x=1" || order[1] != "BenchmarkB" {
		t.Fatalf("order = %v", order)
	}
	m, ok := mean(results["BenchmarkA/x=1"].nsOp)
	if !ok || m != 200 {
		t.Fatalf("mean ns/op = %v (ok=%v), want 200", m, ok)
	}
}

func TestParseFileTest2JSON(t *testing.T) {
	p := writeTemp(t, "bench.json", `{"Time":"2026-08-08T00:00:00Z","Action":"start","Package":"rdmc"}
{"Time":"2026-08-08T00:00:01Z","Action":"output","Package":"rdmc","Output":"goos: linux\n"}
{"Time":"2026-08-08T00:00:02Z","Action":"output","Package":"rdmc","Output":"BenchmarkSendWindow/tcpnic/size=16MB/w=4 \t       5\t   5318813 ns/op\t  373120 B/op\t     147 allocs/op\n"}
{"Time":"2026-08-08T00:00:03Z","Action":"output","Package":"rdmc","Output":"PASS\n"}
{"Time":"2026-08-08T00:00:04Z","Action":"pass","Package":"rdmc","Elapsed":12.3}
`)
	results, order, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
	r := results["BenchmarkSendWindow/tcpnic/size=16MB/w=4"]
	if r == nil || len(r.nsOp) != 1 || r.nsOp[0] != 5318813 {
		t.Fatalf("result = %+v", r)
	}
}

// test2json splits a benchmark result across Output events: the name
// fragment ends in a tab and the measurements land in a later event.
func TestParseFileTest2JSONSplitLines(t *testing.T) {
	p := writeTemp(t, "bench.json", `{"Action":"output","Package":"rdmc","Output":"BenchmarkSendWindow/shmnic/size=16MB/w=4\n"}
{"Action":"output","Package":"rdmc","Output":"BenchmarkSendWindow/shmnic/size=16MB/w=4 \t"}
{"Action":"output","Package":"rdmc","Output":"       5\t   2485003 ns/op\t 6751.00 MB/s\t  2663 B/op\t      19 allocs/op\n"}
{"Action":"output","Package":"rdmc","Output":"PASS\n"}
`)
	results, order, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
	r := results["BenchmarkSendWindow/shmnic/size=16MB/w=4"]
	if r == nil || len(r.nsOp) != 1 || r.nsOp[0] != 2485003 {
		t.Fatalf("result = %+v", r)
	}
	if len(r.allocOp) != 1 || r.allocOp[0] != 19 {
		t.Fatalf("allocs = %v", r.allocOp)
	}
}

func TestFmtNs(t *testing.T) {
	cases := []struct {
		ns   float64
		want string
	}{
		{2_500_000_000, "2.500s"},
		{5_318_813, "5.319ms"},
		{13_400, "13.40µs"},
		{250, "250ns"},
	}
	for _, c := range cases {
		if got := fmtNs(c.ns); got != c.want {
			t.Errorf("fmtNs(%v) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestFmtDelta(t *testing.T) {
	if got := fmtDelta(100, 80); got != "-20.00%" {
		t.Errorf("fmtDelta = %q", got)
	}
	if got := fmtDelta(0, 80); got != "n/a" {
		t.Errorf("fmtDelta zero-old = %q", got)
	}
}

func TestAppendTrajectoryCreatesAndAppends(t *testing.T) {
	p := filepath.Join(t.TempDir(), "trajectory.json")
	f := func(v float64) *float64 { return &v }
	first := deltaReport{
		Label: "r1", RecordedAt: "2026-08-08T00:00:00Z", Old: "a.json", New: "b.txt",
		Benchmarks: []deltaEntry{{Name: "BenchmarkA", Status: "compared", OldNsOp: f(100), NewNsOp: f(90), DeltaPct: f(-10)}},
	}
	if err := appendTrajectory(p, first); err != nil {
		t.Fatal(err)
	}
	second := deltaReport{Label: "r2", RecordedAt: "2026-08-08T01:00:00Z", Old: "a.json", New: "c.txt"}
	if err := appendTrajectory(p, second); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var records []deltaReport
	if err := json.Unmarshal(raw, &records); err != nil {
		t.Fatalf("trajectory is not a JSON array of reports: %v", err)
	}
	if len(records) != 2 || records[0].Label != "r1" || records[1].Label != "r2" {
		t.Fatalf("records = %+v", records)
	}
	if len(records[0].Benchmarks) != 1 || *records[0].Benchmarks[0].DeltaPct != -10 {
		t.Fatalf("first record lost its benchmark entries: %+v", records[0])
	}
	if raw[len(raw)-1] != '\n' {
		t.Error("trajectory file missing trailing newline")
	}
}

func TestAppendTrajectoryRejectsNonArrayFile(t *testing.T) {
	p := writeTemp(t, "not-a-trajectory.json", `{"label":"x"}`)
	if err := appendTrajectory(p, deltaReport{Label: "r"}); err == nil {
		t.Fatal("appendTrajectory accepted a non-array file")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{100, 150, 200}); got != "▁▄█" {
		t.Errorf("sparkline = %q", got)
	}
	if got := sparkline([]float64{100, nan(), 200}); got != "▁·█" {
		t.Errorf("sparkline with gap = %q", got)
	}
	if got := sparkline([]float64{100, 100}); got != "▁▁" {
		t.Errorf("flat sparkline = %q", got)
	}
}

func TestTrendReport(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	records := []deltaReport{
		{
			Label: "r1", RecordedAt: "2026-08-01T00:00:00Z",
			Benchmarks: []deltaEntry{
				{Name: "BenchmarkA", Status: "compared", NewNsOp: f(100)},
				{Name: "BenchmarkOld", Status: "gone", OldNsOp: f(50)},
			},
		},
		{
			Label: "r2", RecordedAt: "2026-08-08T00:00:00Z",
			Benchmarks: []deltaEntry{
				{Name: "BenchmarkA", Status: "compared", NewNsOp: f(200)},
				{Name: "BenchmarkNew", Status: "new", NewNsOp: f(10)},
			},
		},
	}
	got := trendReport(records, nil)
	for _, want := range []string{
		"2 records, r1 (2026-08-01) to r2 (2026-08-08)",
		"| BenchmarkA | 100ns | 200ns | +100.00% | ▁█ |",
		"| BenchmarkOld | 50ns | 50ns | +0.00% | ▁· |",
		"| BenchmarkNew | 10ns | 10ns | +0.00% | ·▁ |",
	} {
		if !contains(got, want) {
			t.Errorf("trend report missing %q in:\n%s", want, got)
		}
	}
}

func TestTrendReportFilterAndEmpty(t *testing.T) {
	if got := trendReport(nil, nil); !contains(got, "(empty trajectory)") {
		t.Errorf("empty trajectory report = %q", got)
	}
	f := func(v float64) *float64 { return &v }
	records := []deltaReport{{
		Label: "r1", RecordedAt: "2026-08-01T00:00:00Z",
		Benchmarks: []deltaEntry{{Name: "BenchmarkA", Status: "compared", NewNsOp: f(100)}},
	}}
	got := trendReport(records, regexp.MustCompile("NoSuchBench"))
	if !contains(got, "(no benchmarks matched)") {
		t.Errorf("filtered-out report = %q", got)
	}
}

func contains(haystack, needle string) bool { return strings.Contains(haystack, needle) }
