package main

import "testing"

func TestParsePeers(t *testing.T) {
	data, ctrl, err := parsePeers("0=a:1/a:2, 1=b:1/b:2")
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != "a:1" || ctrl[0] != "a:2" || data[1] != "b:1" || ctrl[1] != "b:2" {
		t.Errorf("parsed = %v %v", data, ctrl)
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []string{
		"",
		"junk",
		"x=a/b",
		"0=a",       // missing ctrl addr
		"1=a:1/a:2", // no sender
	}
	for _, spec := range cases {
		if _, _, err := parsePeers(spec); err == nil {
			t.Errorf("parsePeers(%q) succeeded", spec)
		}
	}
}

func TestSortInts(t *testing.T) {
	s := []int{3, 1, 2, 0}
	sortInts(s)
	for i, v := range s {
		if v != i {
			t.Fatalf("sorted = %v", s)
		}
	}
}

func TestDigestStable(t *testing.T) {
	if digest([]byte("abc")) != digest([]byte("abc")) {
		t.Error("digest not deterministic")
	}
	if len(digest([]byte("abc"))) != 16 {
		t.Errorf("digest length = %d", len(digest([]byte("abc"))))
	}
}
