// Command rdmcfile multicasts a file from one sender to N receivers over
// real TCP using the RDMC protocol — the paper's motivating use case
// (pushing VM images, packages, and input files to many nodes at once) as a
// runnable tool.
//
// Every participant runs the same binary with the same -peers map; node 0 is
// the sender:
//
//	rdmcfile -id 0 -peers 0=:9100/:9101,1=host1:9100/host1:9101,... -send ./image.bin
//	rdmcfile -id 1 -peers ...                                      -out  ./image.bin
//
// The peers flag maps node ids to dataAddr/ctrlAddr pairs. The sender exits
// zero only if the close barrier succeeds, i.e. every receiver holds the
// complete file (§4.6's guarantee).
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rdmc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdmcfile", flag.ContinueOnError)
	var (
		id      = fs.Int("id", 0, "this node's id (0 sends)")
		peers   = fs.String("peers", "", "comma-separated id=dataAddr/ctrlAddr for every node")
		send    = fs.String("send", "", "file to multicast (sender only)")
		out     = fs.String("out", "", "path to write the received file (receivers only)")
		block   = fs.Int("block", 1<<20, "block size in bytes")
		timeout = fs.Duration("timeout", 10*time.Minute, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	dataAddrs, ctrlAddrs, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	if *id == 0 && *send == "" {
		return fmt.Errorf("rdmcfile: node 0 is the sender and needs -send")
	}
	if *id != 0 && *out == "" {
		return fmt.Errorf("rdmcfile: receivers need -out")
	}

	node, err := rdmc.NewTCPNode(rdmc.TCPConfig{
		NodeID:    *id,
		DataAddrs: dataAddrs,
		CtrlAddrs: ctrlAddrs,
	})
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	members := make([]int, 0, len(dataAddrs))
	for m := range dataAddrs {
		members = append(members, m)
	}
	sortInts(members)

	done := make(chan error, 1)
	var received []byte
	group, err := node.CreateGroup(1, members, rdmc.GroupConfig{BlockSize: *block}, rdmc.Callbacks{
		Incoming: func(size int) []byte { return make([]byte, size) },
		Completion: func(seq int, data []byte, size int) {
			received = data
			done <- nil
		},
		Failure: func(err error) { done <- err },
	})
	if err != nil {
		return err
	}

	if *id == 0 {
		payload, err := os.ReadFile(*send)
		if err != nil {
			return err
		}
		fmt.Printf("rdmcfile: multicasting %s (%d bytes, sha256 %s) to %d receivers\n",
			*send, len(payload), digest(payload), len(members)-1)
		start := time.Now()
		if err := group.Send(payload); err != nil {
			return err
		}
		if err := waitFor(done, *timeout); err != nil {
			return err
		}
		// The close barrier proves every receiver finished.
		if err := group.DestroyWait(*timeout); err != nil {
			return fmt.Errorf("rdmcfile: transfer incomplete: %w", err)
		}
		elapsed := time.Since(start)
		fmt.Printf("rdmcfile: all receivers confirmed in %v (%.2f Gb/s)\n",
			elapsed, float64(len(payload))*8/elapsed.Seconds()/1e9)
		return nil
	}

	fmt.Printf("rdmcfile: node %d waiting for the transfer\n", *id)
	if err := waitFor(done, *timeout); err != nil {
		return err
	}
	if err := os.WriteFile(*out, received, 0o644); err != nil {
		return err
	}
	fmt.Printf("rdmcfile: wrote %s (%d bytes, sha256 %s)\n", *out, len(received), digest(received))
	// Stay up briefly so the sender's close barrier can complete.
	time.Sleep(500 * time.Millisecond)
	return nil
}

func waitFor(done chan error, timeout time.Duration) error {
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("rdmcfile: timed out after %v", timeout)
	}
}

func parsePeers(spec string) (data, ctrl map[int]string, err error) {
	if spec == "" {
		return nil, nil, fmt.Errorf("rdmcfile: -peers is required")
	}
	data = make(map[int]string)
	ctrl = make(map[int]string)
	for _, part := range strings.Split(spec, ",") {
		idStr, addrs, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, nil, fmt.Errorf("rdmcfile: bad peer entry %q (want id=data/ctrl)", part)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, nil, fmt.Errorf("rdmcfile: bad peer id %q", idStr)
		}
		dataAddr, ctrlAddr, ok := strings.Cut(addrs, "/")
		if !ok {
			return nil, nil, fmt.Errorf("rdmcfile: peer %d needs dataAddr/ctrlAddr, got %q", id, addrs)
		}
		data[id] = dataAddr
		ctrl[id] = ctrlAddr
	}
	if _, ok := data[0]; !ok {
		return nil, nil, fmt.Errorf("rdmcfile: peers must include the sender (id 0)")
	}
	return data, ctrl, nil
}

func digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
