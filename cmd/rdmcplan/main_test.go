package main

import (
	"os"
	"testing"
)

func TestRunSummary(t *testing.T) {
	for _, algo := range []string{"sequential", "chain", "tree", "binomial", "mpi"} {
		if err := run([]string{"-algo", algo, "-nodes", "6", "-blocks", "4", "-summary"}, os.Stdout); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunFullTable(t *testing.T) {
	if err := run([]string{"-algo", "binomial", "-nodes", "8", "-blocks", "3"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-algo", "nope"}, os.Stdout); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-nodes", "0"}, os.Stdout); err == nil {
		t.Error("zero nodes accepted")
	}
}
