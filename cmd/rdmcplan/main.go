// Command rdmcplan inspects the deterministic block-transfer schedules at
// the heart of RDMC: the exact data the paper argues could be offloaded to a
// programmable NIC ("RDMC can precompute data-flow graphs describing the
// full pattern of data movement at the outset of each multicast send", §2).
//
// Usage:
//
//	rdmcplan -algo binomial -nodes 8 -blocks 3          # round-by-round table
//	rdmcplan -algo chain -nodes 5 -blocks 4 -summary    # totals only
//
// Algorithms: sequential, chain, tree, binomial, mpi.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rdmc/internal/schedule"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("rdmcplan", flag.ContinueOnError)
	var (
		algo    = fs.String("algo", "binomial", "sequential | chain | tree | binomial | mpi")
		nodes   = fs.Int("nodes", 8, "group size (rank 0 is the sender)")
		blocks  = fs.Int("blocks", 3, "number of message blocks")
		summary = fs.Bool("summary", false, "print totals only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 1 || *blocks < 1 {
		return fmt.Errorf("rdmcplan: need positive -nodes and -blocks")
	}

	gen, err := generator(*algo)
	if err != nil {
		return err
	}
	plan := gen.Plan(*nodes, *blocks)
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("rdmcplan: generated plan is invalid: %w", err)
	}

	fmt.Fprintf(out, "%s: %d nodes × %d blocks → %d transfers over %d rounds\n",
		gen.Name(), *nodes, *blocks, len(plan.Transfers), plan.Rounds())

	if !*summary {
		byRound := make(map[int][]schedule.Transfer)
		for _, tr := range plan.Transfers {
			byRound[tr.Round] = append(byRound[tr.Round], tr)
		}
		for round := 0; round < plan.Rounds(); round++ {
			var cells []string
			for _, tr := range byRound[round] {
				cells = append(cells, fmt.Sprintf("%d→%d:b%d", tr.From, tr.To, tr.Block))
			}
			fmt.Fprintf(out, "round %3d  %s\n", round, strings.Join(cells, "  "))
		}
	}

	// Per-node load: the paper's resource argument in numbers.
	perNode := plan.PerNode()
	fmt.Fprintf(out, "\n%-6s  %6s  %6s\n", "rank", "sends", "recvs")
	for rank, np := range perNode {
		fmt.Fprintf(out, "%-6d  %6d  %6d\n", rank, len(np.Sends), len(np.Recvs))
	}

	// Steady-state slack (§4.5), when the plan has relaying.
	lo, hi := schedule.SteadySteps(*nodes, *blocks)
	var sum float64
	var count int
	for j := lo; j <= hi; j++ {
		if s, ok := schedule.AvgSlack(plan, j); ok {
			sum += s
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(out, "\navg steady-state slack: %.2f", sum/float64(count))
		if *nodes&(*nodes-1) == 0 && *nodes >= 4 {
			fmt.Fprintf(out, " (paper formula: %.2f)", schedule.PredictedAvgSlack(*nodes))
		}
		fmt.Fprintln(out)
	}
	return nil
}

func generator(name string) (schedule.Generator, error) {
	switch name {
	case "sequential":
		return schedule.New(schedule.Sequential), nil
	case "chain":
		return schedule.New(schedule.Chain), nil
	case "tree":
		return schedule.New(schedule.BinomialTree), nil
	case "binomial":
		return schedule.New(schedule.BinomialPipeline), nil
	case "mpi":
		return schedule.New(schedule.MPIScatterAllgather), nil
	default:
		return nil, fmt.Errorf("rdmcplan: unknown algorithm %q", name)
	}
}
