// Command rdmcbench regenerates the RDMC paper's tables and figures on the
// simulated fabric.
//
// Usage:
//
//	rdmcbench -list
//	rdmcbench -exp fig4a [-full]
//	rdmcbench -all [-full]
//	rdmcbench -exp fig8 -full -cpuprofile fig8.pprof
//	rdmcbench -scenario scenarios/cosmos.json
//	rdmcbench -golden check [-golden-dir testdata/golden]
//
// Each experiment prints the same rows or series the paper reports, with the
// paper's qualitative result noted for comparison. -full uses the paper's
// complete parameter ranges; the default trims sweeps for fast runs.
//
// -scenario replays a declarative workload config (see internal/scenario and
// the shipped scenarios/ directory) through the generic runner. -golden
// record regenerates the pinned quick-scale datasets under testdata/golden/;
// -golden check regenerates them in memory and fails on any divergence —
// the determinism regression gate CI runs.
//
// With -all, experiments run concurrently — each owns a private simulation,
// so they share nothing but the process — while the reports print in the
// fixed registry order, byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"rdmc/internal/bench"
	"rdmc/internal/obs"
	"rdmc/internal/scenario"
	"rdmc/internal/schedule"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdmcbench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiment ids")
		exp        = fs.String("exp", "", "experiment id to run")
		all        = fs.Bool("all", false, "run every experiment")
		full       = fs.Bool("full", false, "use the paper's full parameter ranges")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		metrics    = fs.String("metrics", "", "write a metrics snapshot (JSON) to this file on exit; - for stderr")
		tracefile  = fs.String("tracefile", "", "write a Chrome-trace-format event dump to this file on exit")
		scen       = fs.String("scenario", "", "replay a scenario config file (JSON)")
		golden     = fs.String("golden", "", "golden datasets: record or check")
		goldenDir  = fs.String("golden-dir", bench.DefaultGoldenDir, "directory holding the golden datasets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Observability: one shared sink for every deployment the run builds.
	// Instrumentation never touches the virtual clock, so the reported
	// figures are byte-identical with and without it.
	var sink *obs.Obs
	if *metrics != "" || *tracefile != "" {
		sink = obs.New(0)
		bench.SetObserver(sink)
		r := sink.Registry()
		schedule.SetMetrics(&schedule.Metrics{
			FastPath:   r.Counter("schedule.nodeplan_fast"),
			CacheHit:   r.Counter("schedule.plan_cache_hits"),
			CacheMiss:  r.Counter("schedule.plan_cache_misses"),
			CacheSize:  r.Gauge("schedule.plan_cache_size"),
			CacheEvict: r.Counter("schedule.plan_cache_evictions"),
		})
		defer func() {
			bench.SetObserver(nil)
			schedule.SetMetrics(nil)
			if err := writeObs(sink, *metrics, *tracefile); err != nil {
				fmt.Fprintf(os.Stderr, "rdmcbench: %v\n", err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("rdmcbench: cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("rdmcbench: cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdmcbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rdmcbench: memprofile: %v\n", err)
			}
		}()
	}

	registry := bench.Experiments()
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	switch {
	case *list:
		for _, id := range bench.Order() {
			fmt.Println(id)
		}
		return nil

	case *scen != "":
		return runScenarioFile(*scen, scale)

	case *golden != "":
		switch *golden {
		case "record":
			return bench.GoldenRecord(*goldenDir)
		case "check":
			return bench.GoldenCheck(*goldenDir)
		default:
			return fmt.Errorf("rdmcbench: -golden wants record or check, got %q", *golden)
		}

	case *all:
		return runAll(registry, scale)

	case *exp != "":
		report, err := renderOne(registry, *exp, scale)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("rdmcbench: pass -list, -all, -exp <id>, -scenario <file>, or -golden record|check")
	}
}

// runScenarioFile loads a scenario config and replays it through the
// generic runner, printing the report like any registered experiment.
func runScenarioFile(path string, scale bench.Scale) error {
	cfg, err := scenario.LoadFile(path)
	if err != nil {
		return fmt.Errorf("rdmcbench: %w", err)
	}
	start := time.Now()
	report := bench.RunScenario(cfg, scale)
	fmt.Print(report.String())
	fmt.Printf("(generated in %.1fs wall time)\n", time.Since(start).Seconds())
	return nil
}

// writeObs dumps the observability sink: the metrics snapshot as JSON and the
// event ring in Chrome trace format (load into chrome://tracing or Perfetto).
func writeObs(sink *obs.Obs, metrics, tracefile string) error {
	if metrics != "" {
		data, err := sink.Registry().MarshalJSON()
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		data = append(data, '\n')
		if metrics == "-" {
			_, err = os.Stderr.Write(data)
		} else {
			err = os.WriteFile(metrics, data, 0o644)
		}
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if tracefile != "" {
		f, err := os.Create(tracefile)
		if err != nil {
			return fmt.Errorf("tracefile: %w", err)
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, sink.Ring().Snapshot()); err != nil {
			return fmt.Errorf("tracefile: %w", err)
		}
	}
	return nil
}

// runAll executes every experiment concurrently. Each runner builds its own
// deployments (every deployment owns a private simnet.Sim, so virtual clocks
// never interact), and the rendered reports are buffered and printed in
// registry order, making the output deterministic regardless of completion
// order.
func runAll(registry map[string]bench.Runner, scale bench.Scale) error {
	ids := bench.Order()
	reports := make([]string, len(ids))
	errs := make([]error, len(ids))
	start := time.Now()
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			// Runners panic on internal failure; turn that into an error so
			// one broken experiment reports itself instead of tearing down
			// the whole concurrent batch mid-print.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("panic: %v", r)
				}
			}()
			reports[i], errs[i] = renderOne(registry, id, scale)
		}(i, id)
	}
	wg.Wait()
	for i, id := range ids {
		if errs[i] != nil {
			return fmt.Errorf("rdmcbench: %s: %w", id, errs[i])
		}
		fmt.Print(reports[i])
	}
	fmt.Printf("(all %d experiments in %.1fs wall time)\n", len(ids), time.Since(start).Seconds())
	return nil
}

// renderOne runs a single experiment and returns its printed form, including
// the per-experiment wall time line.
func renderOne(registry map[string]bench.Runner, id string, scale bench.Scale) (string, error) {
	runner, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("rdmcbench: unknown experiment %q (try -list)", id)
	}
	start := time.Now()
	report := runner(scale)
	var sb strings.Builder
	sb.WriteString(report.String())
	fmt.Fprintf(&sb, "(generated in %.1fs wall time)\n\n", time.Since(start).Seconds())
	return sb.String(), nil
}
