// Command rdmcbench regenerates the RDMC paper's tables and figures on the
// simulated fabric.
//
// Usage:
//
//	rdmcbench -list
//	rdmcbench -exp fig4a [-full]
//	rdmcbench -all [-full]
//
// Each experiment prints the same rows or series the paper reports, with the
// paper's qualitative result noted for comparison. -full uses the paper's
// complete parameter ranges; the default trims sweeps for fast runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rdmc/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdmcbench", flag.ContinueOnError)
	var (
		list = fs.Bool("list", false, "list experiment ids")
		exp  = fs.String("exp", "", "experiment id to run")
		all  = fs.Bool("all", false, "run every experiment")
		full = fs.Bool("full", false, "use the paper's full parameter ranges")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	registry := bench.Experiments()
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	switch {
	case *list:
		for _, id := range bench.Order() {
			fmt.Println(id)
		}
		return nil

	case *all:
		for _, id := range bench.Order() {
			if err := runOne(registry, id, scale); err != nil {
				return err
			}
		}
		return nil

	case *exp != "":
		return runOne(registry, *exp, scale)

	default:
		fs.Usage()
		return fmt.Errorf("rdmcbench: pass -list, -all, or -exp <id>")
	}
}

func runOne(registry map[string]bench.Runner, id string, scale bench.Scale) error {
	runner, ok := registry[id]
	if !ok {
		return fmt.Errorf("rdmcbench: unknown experiment %q (try -list)", id)
	}
	start := time.Now()
	report := runner(scale)
	fmt.Print(report.String())
	fmt.Printf("(generated in %.1fs wall time)\n\n", time.Since(start).Seconds())
	return nil
}
