package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "slack"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("bare invocation succeeded")
	}
}
