package rdmc

import (
	"errors"
	"fmt"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
	"rdmc/internal/session"
)

// SessionState is the lifecycle state of a Session (see Session).
type SessionState = session.State

// Session states.
const (
	// SessionActive: the current epoch is installed and moving data.
	SessionActive = session.StateActive
	// SessionWedged: a failure is suspected; the session has stopped
	// transmitting and is agreeing on the survivor set. Sends queue.
	SessionWedged = session.StateWedged
	// SessionStalled: fewer than a strict majority of the original
	// members survive; the session holds its delivered prefix forever.
	SessionStalled = session.StateStalled
	// SessionEvicted: the other members suspected THIS node and moved on
	// without it.
	SessionEvicted = session.StateEvicted
	// SessionClosed: Close was called locally.
	SessionClosed = session.StateClosed
)

// Session errors.
var (
	// ErrSessionEvicted is reported once the rest of the membership has
	// excluded this node.
	ErrSessionEvicted = session.ErrEvicted
	// ErrNotSessionRoot rejects sends from a member that is not the
	// current epoch's root.
	ErrNotSessionRoot = session.ErrNotRoot
)

// SessionConfig carries the parameters of a reliable session.
type SessionConfig struct {
	// ID names the session. It reserves the group-id range [ID+1, ID+n]
	// for its epochs — keep that range free of plain CreateGroup ids.
	ID int
	// Members lists the original membership (2..64 node ids);
	// Members[0] is the first root. Every member must construct the
	// session with the same id and list.
	Members []int
	// BlockSize is the relaying granularity; zero selects 1 MiB.
	BlockSize int
	// Algorithm selects the schedule; zero selects BinomialPipeline.
	// HybridBinomial is not supported: its rack map is keyed by rank,
	// which remaps on every view change.
	Algorithm Algorithm
	// SendWindow / RecvWindow configure each epoch's group (see
	// GroupConfig).
	SendWindow int
	RecvWindow int
	// MetadataOnly runs transfers without payload bytes (simulation
	// studies); Deliver then carries nil data.
	MetadataOnly bool
	// Tenant, when set, paces every epoch of this session under the named
	// registry tenant's bandwidth weight (the node must have joined a
	// Registry with QoS enabled; see Node.JoinRegistry). Empty leaves the
	// session unthrottled.
	Tenant string
}

// SessionCallbacks notify the application of session events. All callbacks
// run outside the session's lock and may call back into the Session.
type SessionCallbacks struct {
	// Deliver runs for every message, in session-sequence order, gap-free
	// and duplicate-suppressed — across view changes. data is nil for
	// metadata-only sessions.
	Deliver func(seq uint64, data []byte, size int)
	// OnEpoch runs when an epoch is installed (including the first), with
	// the surviving membership; members[0] is the epoch's root.
	OnEpoch func(epoch uint64, members []int)
	// OnState runs on every lifecycle transition.
	OnState func(state SessionState, err error)
}

// NewSession builds this node's endpoint of a reliable multicast session: an
// epoch-based membership layer over the multicast engine. Within an epoch it
// is an RDMC group; when a member fails (a broken transfer, or the failure
// detector) the survivors agree on the next membership through a shared
// status table, re-send whatever was not yet delivered everywhere, and
// continue — so Deliver observes at-least-once, gap-free, identically
// ordered messages on every surviving member. See DESIGN.md §7.
func (n *Node) NewSession(cfg SessionConfig, cbs SessionCallbacks) (*Session, error) {
	if n.provider == nil {
		return nil, errors.New("rdmc: this node's transport does not support sessions")
	}
	if cfg.ID < 0 || int64(cfg.ID) > int64(^uint32(0)) {
		return nil, fmt.Errorf("rdmc: session id %d outside 32-bit range", cfg.ID)
	}
	var gen schedule.Generator
	switch {
	case cfg.Algorithm == HybridBinomial:
		return nil, errors.New("rdmc: sessions do not support HybridBinomial (rack maps go stale across view changes)")
	case cfg.Algorithm == 0:
		// Session default (binomial pipeline).
	case cfg.Algorithm.base() == schedule.Algorithm(0):
		return nil, fmt.Errorf("rdmc: unknown algorithm %d", cfg.Algorithm)
	default:
		gen = schedule.New(cfg.Algorithm.base())
	}
	blockSize := cfg.BlockSize
	if blockSize == 0 {
		blockSize = 1 << 20
	}
	members := make([]rdma.NodeID, len(cfg.Members))
	for i, m := range cfg.Members {
		members[i] = rdma.NodeID(m)
	}
	var throttle core.SendThrottle
	if cfg.Tenant != "" {
		if n.registry == nil {
			return nil, fmt.Errorf("rdmc: session tenant %q needs the node to join a registry first", cfg.Tenant)
		}
		if n.registry.Tenant(cfg.Tenant) == nil {
			return nil, fmt.Errorf("rdmc: unknown registry tenant %q", cfg.Tenant)
		}
		if th := n.registry.nodeThrottle(n.id); th != nil {
			// Epoch groups burn ids ID+1, ID+2, ... — bind the whole range
			// once so every future view change inherits the tenant's class.
			_ = th.BindSpan(core.GroupID(cfg.ID+1), 1<<10, cfg.Tenant)
			throttle = th
		}
	}
	mgr, err := session.New(n.engine, n.provider, session.Config{
		ID:           uint32(cfg.ID),
		Members:      members,
		BlockSize:    blockSize,
		Generator:    gen,
		SendWindow:   cfg.SendWindow,
		RecvWindow:   cfg.RecvWindow,
		MetadataOnly: cfg.MetadataOnly,
		Throttle:     throttle,
		Observer:     n.observer,
	}, session.Callbacks{
		Deliver: cbs.Deliver,
		OnEpoch: wrapOnEpoch(cbs.OnEpoch),
		OnState: cbs.OnState,
	})
	if err != nil {
		return nil, err
	}
	return &Session{inner: mgr}, nil
}

func wrapOnEpoch(fn func(epoch uint64, members []int)) func(uint64, []rdma.NodeID) {
	if fn == nil {
		return nil
	}
	return func(epoch uint64, members []rdma.NodeID) {
		out := make([]int, len(members))
		for i, m := range members {
			out[i] = int(m)
		}
		fn(epoch, out)
	}
}

// Session is a reliable multicast session: group semantics that survive
// member failures through epoch-based view changes.
type Session struct {
	inner *session.Manager
}

// Send multicasts data; only the current epoch's root may call it. While the
// session is wedged mid-view-change the message queues and transmits after
// the next install. The buffer must stay untouched until delivered locally.
func (s *Session) Send(data []byte) error { return s.inner.Send(data) }

// SendSized multicasts a metadata-only message of the given size.
func (s *Session) SendSized(size int) error { return s.inner.SendSized(size) }

// State returns the lifecycle state and, for terminal states, its cause.
func (s *Session) State() (SessionState, error) { return s.inner.State() }

// Epoch returns the highest installed epoch (1 is the initial membership).
func (s *Session) Epoch() uint64 { return s.inner.Epoch() }

// Members returns the current epoch's membership; members[0] is the root.
func (s *Session) Members() []int {
	ms := s.inner.Members()
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = int(m)
	}
	return out
}

// IsRoot reports whether this node is the current epoch's root.
func (s *Session) IsRoot() bool { return s.inner.IsRoot() }

// Delivered returns the next session sequence to deliver (= messages
// delivered so far, since delivery is gap-free from zero).
func (s *Session) Delivered() uint64 { return s.inner.Delivered() }

// Stats returns the session's lifetime counters (epochs installed, messages
// re-sent across view changes, duplicates suppressed, recovery latency).
func (s *Session) Stats() session.Stats { return s.inner.Stats() }

// Close tears the local endpoint down. Peers observe the departure as a
// failure and continue without this node.
func (s *Session) Close() error { return s.inner.Close() }
