package rdmc

import (
	"io"

	"rdmc/internal/obs"
)

// Observer collects a deployment's metrics and structured events: counters
// and latency/size histograms in a registry, and a bounded ring of
// per-protocol-event records exportable in Chrome trace format (load the
// output of WriteChromeTrace into chrome://tracing or Perfetto).
//
// Attach one via TCPConfig.Observer or SimConfig.Observer before building
// the deployment. One Observer may be shared by several nodes — counters
// aggregate and every event carries its node id — which is exactly what a
// single-process cluster (NewSimCluster, local testing) wants. Collection is
// lock-cheap (atomics plus one mutex-guarded ring append per event) and a
// nil Observer costs the instrumented paths nothing but a pointer test.
type Observer struct {
	o *obs.Obs
}

// NewObserver builds an observer whose event ring holds ringCapacity events
// (the oldest are overwritten); zero or negative selects 262144.
func NewObserver(ringCapacity int) *Observer {
	return &Observer{o: obs.New(ringCapacity)}
}

// MetricsJSON renders a point-in-time snapshot of every counter and
// histogram as JSON.
func (ob *Observer) MetricsJSON() ([]byte, error) {
	return ob.o.Registry().MarshalJSON()
}

// Publish registers the metrics registry as an expvar variable under name,
// so a tcpnic deployment serving net/http's /debug/vars exposes a live
// snapshot. Publishing the same name twice panics (expvar's contract), so
// call it once per process.
func (ob *Observer) Publish(name string) { ob.o.Registry().Publish(name) }

// WriteChromeTrace dumps the event ring's current contents in Chrome trace
// format. Send/receive post-completion pairs become duration slices; other
// events become instants.
func (ob *Observer) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, ob.o.Ring().Snapshot())
}

// EventCount returns how many events have been recorded in total, including
// any the bounded ring has already overwritten.
func (ob *Observer) EventCount() uint64 { return ob.o.Ring().Total() }

// sink unwraps the internal handle (nil-safe) for deployment wiring.
func (ob *Observer) sink() *obs.Obs {
	if ob == nil {
		return nil
	}
	return ob.o
}
