// Benchmarks regenerating every table and figure of the RDMC paper (one
// testing.B per artifact, backed by the runners in internal/bench), plus
// micro-benchmarks of the library's hot paths. Each paper bench prints its
// reproduced table once via b.Log at -v; `go run ./cmd/rdmcbench` gives the
// same output directly.
package rdmc_test

import (
	"fmt"
	"testing"
	"time"

	"rdmc"
	"rdmc/internal/bench"
	"rdmc/internal/core"
	"rdmc/internal/schedule"
	"rdmc/internal/service"
	"rdmc/internal/simnet"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := bench.Experiments()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		report := runner(bench.Quick)
		if i == 0 && testing.Verbose() {
			b.Log("\n" + report.String())
		}
	}
}

func BenchmarkTable1Breakdown(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkFig4Latency256MB(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFig4Latency8MB(b *testing.B)   { benchExperiment(b, "fig4b") }
func BenchmarkFig5StepBreakdown(b *testing.B) {
	benchExperiment(b, "fig5")
}
func BenchmarkFig6BlockSize(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7TinyMessages(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8Scalability(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9Cosmos(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10Fractus(b *testing.B)     { benchExperiment(b, "fig10a") }
func BenchmarkFig10Apt(b *testing.B)         { benchExperiment(b, "fig10b") }
func BenchmarkFig11Completion(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12CoreDirect(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkSlackAnalysis(b *testing.B)    { benchExperiment(b, "slack") }
func BenchmarkSlowLink(b *testing.B)         { benchExperiment(b, "slowlink") }
func BenchmarkDelayRobustness(b *testing.B)  { benchExperiment(b, "delay") }
func BenchmarkHybridTopology(b *testing.B)   { benchExperiment(b, "hybrid") }
func BenchmarkSmallMessages(b *testing.B)    { benchExperiment(b, "smc") }
func BenchmarkRecvWindowAblation(b *testing.B) {
	benchExperiment(b, "window")
}
func BenchmarkFailover(b *testing.B) { benchExperiment(b, "failover") }
func BenchmarkAdaptiveScheduling(b *testing.B) {
	benchExperiment(b, "adaptive")
}
func BenchmarkWANLossTolerance(b *testing.B) {
	benchExperiment(b, "wan")
}

// --- micro-benchmarks of the library's hot paths ---

// BenchmarkBinomialPlanGeneration measures computing the full block schedule
// for a 64-node group sending 256 blocks (a 256 MB message at 1 MB blocks).
func BenchmarkBinomialPlanGeneration(b *testing.B) {
	gen := schedule.New(schedule.BinomialPipeline)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := gen.Plan(64, 256)
		if len(plan.Transfers) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkGeneralNPlanGeneration measures the circulant generator on a
// non-power-of-two group.
func BenchmarkGeneralNPlanGeneration(b *testing.B) {
	gen := schedule.New(schedule.BinomialPipeline)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := gen.Plan(48, 256)
		if len(plan.Transfers) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkNodePlan compares the two ways a group member can learn its own
// schedule: materializing the full O(n·k) plan and splitting it (the old hot
// path, kept here as the baseline), versus the rank-local NodePlan fast path.
// For power-of-two binomial groups the fast path is closed-form O(log n + k),
// so its cost should stay flat as n grows from 16 to 512 while the full-plan
// baseline grows linearly.
func BenchmarkNodePlan(b *testing.B) {
	const blocks = 256
	gen := schedule.New(schedule.BinomialPipeline)
	for _, n := range []int{16, 64, 512} {
		rank := n / 2 // a mid-tree rank with both sends and receives
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				np := gen.Plan(n, blocks).PerNode()[rank]
				if len(np.Recvs) != blocks {
					b.Fatalf("rank %d received %d blocks", rank, len(np.Recvs))
				}
			}
		})
		b.Run(fmt.Sprintf("rank/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				np := gen.NodePlan(n, blocks, rank)
				if len(np.Recvs) != blocks {
					b.Fatalf("rank %d received %d blocks", rank, len(np.Recvs))
				}
			}
		})
	}
}

// BenchmarkClosedFormSend measures the §4.4 closed-form send rule itself.
func BenchmarkClosedFormSend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		schedule.ClosedFormSend(6, 256, i%64, i%261)
	}
}

// BenchmarkFluidFabric measures the max-min fair fabric under the binomial
// pipeline's steady-state load shape: 32 concurrent flows starting and
// finishing across 64 NIC ports.
func BenchmarkFluidFabric(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := simnet.NewSim(1)
		fabric := simnet.NewFabric(sim)
		ports := make([]*simnet.Resource, 64)
		for p := range ports {
			ports[p] = simnet.NewResource("p", 1e9)
		}
		for f := 0; f < 32; f++ {
			fabric.StartFlow(1e6, []*simnet.Resource{ports[2*f], ports[2*f+1]}, func() {})
		}
		sim.Run()
	}
}

// BenchmarkSimulatedMulticast measures one full simulated 64 MB multicast to
// 7 receivers — the end-to-end cost of the virtual-time stack.
func BenchmarkSimulatedMulticast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.MulticastOnceForBench(8, 64<<20, 1<<20)
	}
}

// BenchmarkConcurrentGroups drives N overlapping groups through one engine
// pair — the paper's Fig. 10 concurrent-group shape — and reports the cost of
// one round of N 1 MB messages (one per group, all in flight together). The
// tcpnic variants move real bytes over loopback sockets; the simnic variants
// run the full protocol metadata-only in virtual time. Allocations per round
// are the steady-state dataplane overhead the engine and provider impose.
func BenchmarkConcurrentGroups(b *testing.B) {
	const msgSize = 1 << 20
	for _, groups := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tcpnic/groups=%d", groups), func(b *testing.B) {
			benchConcurrentGroupsTCP(b, groups, msgSize)
		})
	}
	for _, groups := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("simnic/groups=%d", groups), func(b *testing.B) {
			benchConcurrentGroupsSim(b, groups, msgSize)
		})
	}
}

func benchConcurrentGroupsTCP(b *testing.B, groups, msgSize int) {
	nodes, err := rdmc.NewLocalCluster(2)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	delivered := make(chan int, groups)
	roots := make([]*rdmc.Group, groups)
	payload := make([]byte, msgSize)
	for gid := 0; gid < groups; gid++ {
		recvBuf := make([]byte, msgSize)
		// SendWindow pinned to 1: this benchmark isolates per-round engine
		// overhead across groups; BenchmarkSendWindow owns the window sweep.
		gcfg := rdmc.GroupConfig{BlockSize: 1 << 18, SendWindow: 1}
		root, err := nodes[0].CreateGroup(gid, []int{0, 1}, gcfg, rdmc.Callbacks{})
		if err != nil {
			b.Fatal(err)
		}
		gid := gid
		_, err = nodes[1].CreateGroup(gid, []int{0, 1}, gcfg, rdmc.Callbacks{
			Incoming:   func(size int) []byte { return recvBuf },
			Completion: func(seq int, data []byte, size int) { delivered <- gid },
		})
		if err != nil {
			b.Fatal(err)
		}
		roots[gid] = root
	}

	// One watchdog for the whole run: a per-wait time.After would charge a
	// timer allocation to every delivery and pollute allocs/op.
	watchdog := time.NewTimer(60 * time.Second)
	defer watchdog.Stop()

	b.ReportAllocs()
	b.SetBytes(int64(groups * msgSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range roots {
			if err := g.Send(payload); err != nil {
				b.Fatal(err)
			}
		}
		for done := 0; done < groups; done++ {
			select {
			case <-delivered:
			case <-watchdog.C:
				b.Fatalf("round %d: timed out with %d of %d groups delivered", i, done, groups)
			}
		}
	}
}

func benchConcurrentGroupsSim(b *testing.B, groups, msgSize int) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	roots := make([]*rdmc.Group, groups)
	members := make([]*rdmc.Group, groups)
	for gid := 0; gid < groups; gid++ {
		// SendWindow pinned to 1: this benchmark isolates per-round engine
		// overhead across groups; BenchmarkSendWindow owns the window sweep.
		gcfg := rdmc.GroupConfig{BlockSize: 1 << 18, SendWindow: 1}
		root, err := cluster.Node(0).CreateGroup(gid, []int{0, 1}, gcfg, rdmc.Callbacks{})
		if err != nil {
			b.Fatal(err)
		}
		member, err := cluster.Node(1).CreateGroup(gid, []int{0, 1}, gcfg, rdmc.Callbacks{})
		if err != nil {
			b.Fatal(err)
		}
		roots[gid] = root
		members[gid] = member
	}

	b.ReportAllocs()
	b.SetBytes(int64(groups * msgSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range roots {
			if err := g.SendSized(msgSize); err != nil {
				b.Fatal(err)
			}
		}
		cluster.Run()
		for gid, g := range members {
			if g.Delivered() != i+1 {
				b.Fatalf("round %d: group %d delivered %d messages", i, gid, g.Delivered())
			}
		}
	}
}

// BenchmarkSendWindow sweeps the send window (the receive window follows it
// by default) across message sizes and both providers. On tcpnic the window
// is what hides the per-block ready-notice round trip behind the wire: at
// W=1 the sender idles between blocks waiting for the receiver's credit,
// while at W=4 the pipeline stays full. The 32 KB block size puts the run in
// the regime where that round trip dominates; at loopback-memcpy-bound block
// sizes (256 KB and up) the copy cost drowns the control overhead and the
// window has nothing to hide. On simnic the sweep runs the full protocol in
// virtual time, so it measures the engine's own overhead per window setting
// rather than wire behavior.
func BenchmarkSendWindow(b *testing.B) {
	for _, size := range []int{1 << 20, 16 << 20} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("tcpnic/size=%dMB/w=%d", size>>20, w), func(b *testing.B) {
				benchSendWindowTCP(b, w, size)
			})
		}
	}
	// Same sweep with the data plane on in-process shared memory: the
	// tcpnic rows above stay honest TCP; these isolate what the kernel
	// socket path costs by removing it.
	for _, size := range []int{1 << 20, 16 << 20} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("shmnic/size=%dMB/w=%d", size>>20, w), func(b *testing.B) {
				benchSendWindowTCP(b, w, size, rdmc.WithIntraHost())
			})
		}
	}
	for _, size := range []int{1 << 20, 16 << 20} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("simnic/size=%dMB/w=%d", size>>20, w), func(b *testing.B) {
				benchSendWindowSim(b, w, size)
			})
		}
	}
}

func benchSendWindowTCP(b *testing.B, window, msgSize int, opts ...rdmc.ClusterOption) {
	nodes, err := rdmc.NewLocalCluster(2, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	gcfg := rdmc.GroupConfig{BlockSize: 1 << 15, SendWindow: window}
	delivered := make(chan struct{}, 1)
	recvBuf := make([]byte, msgSize)
	root, err := nodes[0].CreateGroup(1, []int{0, 1}, gcfg, rdmc.Callbacks{})
	if err != nil {
		b.Fatal(err)
	}
	_, err = nodes[1].CreateGroup(1, []int{0, 1}, gcfg, rdmc.Callbacks{
		Incoming:   func(size int) []byte { return recvBuf },
		Completion: func(seq int, data []byte, size int) { delivered <- struct{}{} },
	})
	if err != nil {
		b.Fatal(err)
	}

	payload := make([]byte, msgSize)
	watchdog := time.NewTimer(60 * time.Second)
	defer watchdog.Stop()

	// Untimed warmup: let the kernel's socket autotuning, the staging
	// pools, and the runtime settle before measuring.
	for i := 0; i < 5; i++ {
		if err := root.Send(payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-delivered:
		case <-watchdog.C:
			b.Fatalf("warmup round %d: delivery timed out", i)
		}
	}

	b.ReportAllocs()
	b.SetBytes(int64(msgSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := root.Send(payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-delivered:
		case <-watchdog.C:
			b.Fatalf("round %d: delivery timed out", i)
		}
	}
}

func benchSendWindowSim(b *testing.B, window, msgSize int) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	gcfg := rdmc.GroupConfig{BlockSize: 1 << 18, SendWindow: window}
	members := []int{0, 1, 2, 3}
	groups := make([]*rdmc.Group, len(members))
	for i := range members {
		g, err := cluster.Node(i).CreateGroup(1, members, gcfg, rdmc.Callbacks{})
		if err != nil {
			b.Fatal(err)
		}
		groups[i] = g
	}

	b.ReportAllocs()
	b.SetBytes(int64(msgSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := groups[0].SendSized(msgSize); err != nil {
			b.Fatal(err)
		}
		cluster.Run()
		if groups[3].Delivered() != i+1 {
			b.Fatalf("round %d: tail member delivered %d", i, groups[3].Delivered())
		}
	}
}

// BenchmarkTenantThrottle measures the service layer's weighted-fair send
// throttle at steady state: 256 groups across four weighted tenant classes
// cycling acquire → refuse → release → drain on one NIC budget. This is the
// per-block overhead the QoS path adds to the cumulative-credit gate, so it
// must stay a few hundred nanoseconds and allocation-free in steady state.
func BenchmarkTenantThrottle(b *testing.B) {
	th := service.NewWFQThrottle(1 << 20)
	const groups, block = 256, 64 << 10
	for c := 0; c < 4; c++ {
		if err := th.AddClass(fmt.Sprintf("t%d", c), c+1); err != nil {
			b.Fatal(err)
		}
	}
	for g := 0; g < groups; g++ {
		if err := th.BindGroup(core.GroupID(g), fmt.Sprintf("t%d", g%4)); err != nil {
			b.Fatal(err)
		}
	}
	resume := func() {}
	held := make([]int, 0, groups)
	// Fill the budget first so every timed operation runs the contended
	// cycle, independent of -benchtime.
	next := 0
	for th.Acquire(core.GroupID(next), block, resume) {
		held = append(held, next)
		next++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Retire the oldest block, which drains the eldest refused group
		// by weighted virtual clock and hands it a byte grant; then the
		// next group's acquire joins the waiter queue in its place.
		h := held[0]
		held = held[1:]
		for _, fn := range th.Release(core.GroupID(h), block) {
			fn()
		}
		g := (next + i) % groups
		if th.Acquire(core.GroupID(g), block, resume) {
			held = append(held, g)
		}
	}
}
