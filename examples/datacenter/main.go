// Datacenter explores RDMC on a two-tier datacenter fabric with an
// oversubscribed top-of-rack (TOR) switch — the setting of the paper's §4.3
// hybrid discussion and Figure 10b. It pushes a software image to every node
// of a 4-rack cluster under each overlay, sweeps the TOR oversubscription
// factor, and shows where the rack-aware hybrid overtakes the flat binomial
// pipeline.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"rdmc"
)

const (
	racks    = 4
	rackSize = 8
	nodes    = racks * rackSize
	nicGbps  = 40
	imageMB  = 64
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("pushing a %d MB image to %d nodes (%d racks of %d, %d Gb/s NICs)\n\n",
		imageMB, nodes, racks, rackSize, nicGbps)

	fmt.Printf("%-26s", "cross-rack Gb/s per node:")
	sweep := []float64{2, 4, 8, 16, 40}
	for _, g := range sweep {
		fmt.Printf("  %8.0f", g)
	}
	fmt.Println()

	type overlay struct {
		name string
		cfg  rdmc.GroupConfig
	}
	rackOf := make([]int, nodes)
	for i := range rackOf {
		rackOf[i] = i / rackSize
	}
	overlays := []overlay{
		{"sequential send", rdmc.GroupConfig{Algorithm: rdmc.SequentialSend}},
		{"flat binomial pipeline", rdmc.GroupConfig{Algorithm: rdmc.BinomialPipeline}},
		{"rack-aware hybrid", rdmc.GroupConfig{Algorithm: rdmc.HybridBinomial, RackOf: rackOf}},
	}

	for _, ov := range overlays {
		fmt.Printf("%-26s", ov.name)
		for _, perNode := range sweep {
			gbps, err := push(ov.cfg, perNode)
			if err != nil {
				return err
			}
			fmt.Printf("  %8.1f", gbps)
		}
		fmt.Println()
	}

	fmt.Println("\n(delivered Gb/s per overlay; the hybrid keeps block transfers off the")
	fmt.Println("trunk, so it wins once the TOR is oversubscribed past the point where a")
	fmt.Println("leader's doubled transmit load costs less than the trunk contention)")
	return nil
}

// push multicasts the image to every node over a simulated two-tier fabric
// and returns the delivered bandwidth in Gb/s.
func push(cfg rdmc.GroupConfig, crossRackPerNodeGbps float64) (float64, error) {
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{
		Nodes:     nodes,
		LinkGbps:  nicGbps,
		RackSize:  rackSize,
		TrunkGbps: crossRackPerNodeGbps * rackSize,
		Seed:      1,
	})
	if err != nil {
		return 0, err
	}
	members := make([]int, nodes)
	for i := range members {
		members[i] = i
	}
	delivered := 0
	var root *rdmc.Group
	for i := range members {
		g, err := cluster.Node(i).CreateGroup(1, members, cfg, rdmc.Callbacks{
			Completion: func(int, []byte, int) { delivered++ },
		})
		if err != nil {
			return 0, err
		}
		if i == 0 {
			root = g
		}
	}
	const size = imageMB << 20
	if err := root.SendSized(size); err != nil {
		return 0, err
	}
	elapsed := cluster.Run()
	if delivered != nodes {
		return 0, fmt.Errorf("delivered %d of %d", delivered, nodes)
	}
	return float64(size) * 8 / elapsed.Seconds() / 1e9, nil
}
