// Quickstart: multicast one message from a sender to three receivers over
// real TCP sockets on loopback — the smallest complete RDMC program.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"sync"
	"time"

	"rdmc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nodes = 4

	// Start four RDMC nodes in this process, wired over loopback TCP. In a
	// real deployment each node runs rdmc.NewTCPNode with the addresses of
	// its peers.
	cluster, err := rdmc.NewLocalCluster(nodes)
	if err != nil {
		return err
	}
	defer func() {
		for _, n := range cluster {
			_ = n.Close()
		}
	}()

	// Every member creates the group with the same id and member list;
	// members[0] is the only sender (the paper's create_group contract).
	members := []int{0, 1, 2, 3}
	var wg sync.WaitGroup
	wg.Add(nodes) // every member, sender included, completes locally

	groups := make([]*rdmc.Group, nodes)
	for i, node := range cluster {
		i := i
		groups[i], err = node.CreateGroup(1, members, rdmc.GroupConfig{
			BlockSize: 256 << 10,
		}, rdmc.Callbacks{
			// Receivers hand RDMC a buffer for each incoming message.
			Incoming: func(size int) []byte { return make([]byte, size) },
			// Completion fires when the message is locally complete.
			Completion: func(seq int, data []byte, size int) {
				if data != nil {
					fmt.Printf("node %d: message %d complete (%d bytes, sha256 %s)\n",
						i, seq, size, digest(data))
				} else {
					fmt.Printf("node %d: message %d sent (%d bytes)\n", i, seq, size)
				}
				wg.Done()
			},
			Failure: func(err error) { log.Printf("node %d: group failed: %v", i, err) },
		})
		if err != nil {
			return err
		}
	}

	// The root multicasts 8 MB of random data.
	payload := make([]byte, 8<<20)
	if _, err := rand.Read(payload); err != nil {
		return err
	}
	fmt.Printf("sender: multicasting %d bytes (sha256 %s)\n", len(payload), digest(payload))
	start := time.Now()
	if err := groups[0].Send(payload); err != nil {
		return err
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("replicated to %d nodes in %v (%.2f Gb/s)\n",
		nodes-1, elapsed, float64(len(payload))*8/elapsed.Seconds()/1e9)

	// A successful Destroy proves every message reached every member.
	if err := groups[0].DestroyWait(10 * time.Second); err != nil {
		return fmt.Errorf("close barrier: %w", err)
	}
	fmt.Println("close barrier succeeded: all receivers confirmed")
	return nil
}

func digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
