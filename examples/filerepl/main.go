// Filerepl demonstrates the paper's motivating use case — pushing a large
// artifact (a VM image, a package, an input file) to a set of compute nodes
// — including what happens when a receiver crashes mid-transfer and how the
// application recovers by re-forming the group among survivors (§3 item 6:
// "the application can then self-repair by closing the old RDMC session and
// initiating a new one").
//
// Run with:
//
//	go run ./examples/filerepl
package main

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"log"
	"sync"
	"time"

	"rdmc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nodes = 6
	cluster, err := rdmc.NewLocalCluster(nodes)
	if err != nil {
		return err
	}
	defer func() {
		for _, n := range cluster {
			if n != nil {
				_ = n.Close()
			}
		}
	}()

	// The "file": 32 MB of random bytes.
	artifact := make([]byte, 32<<20)
	if _, err := rand.Read(artifact); err != nil {
		return err
	}

	// --- Attempt 1: replicate to all five receivers; node 4 will crash. ---
	fmt.Println("attempt 1: replicating to nodes 1..5 (node 4 will crash mid-transfer)")
	members := []int{0, 1, 2, 3, 4, 5}
	received := newReceiptLog(nodes)
	groups, err := createAll(cluster, 1, members, received)
	if err != nil {
		return err
	}
	if err := groups[0].Send(artifact); err != nil {
		return err
	}
	// Crash node 4 shortly after the transfer starts.
	time.Sleep(20 * time.Millisecond)
	crashed := cluster[4]
	cluster[4] = nil
	_ = crashed.Close()

	// The close barrier must fail: not every receiver can confirm.
	err = groups[0].DestroyWait(15 * time.Second)
	if err == nil {
		return fmt.Errorf("close unexpectedly succeeded despite the crash")
	}
	fmt.Printf("attempt 1: close failed as expected: %v\n", err)

	// --- Attempt 2: re-form the group among survivors and resend. ---
	fmt.Println("attempt 2: re-forming the group among survivors and retrying")
	survivors := []int{0, 1, 2, 3, 5}
	received2 := newReceiptLog(nodes)
	groups2 := make([]*rdmc.Group, nodes)
	for _, id := range survivors {
		g, err := createOne(cluster[id], 2, survivors, id, received2)
		if err != nil {
			return err
		}
		groups2[id] = g
	}
	if err := groups2[0].Send(artifact); err != nil {
		return err
	}
	received2.wait(len(survivors))
	if err := groups2[0].DestroyWait(15 * time.Second); err != nil {
		return fmt.Errorf("attempt 2 close barrier: %w", err)
	}

	// Verify every survivor holds the exact artifact.
	for _, id := range survivors[1:] {
		if !bytes.Equal(received2.data(id), artifact) {
			return fmt.Errorf("node %d holds a corrupt copy", id)
		}
	}
	fmt.Println("attempt 2: close barrier succeeded — every survivor holds a verified copy")
	return nil
}

// receiptLog collects per-node deliveries.
type receiptLog struct {
	mu    sync.Mutex
	cond  *sync.Cond
	byID  map[int][]byte
	count int
}

func newReceiptLog(nodes int) *receiptLog {
	r := &receiptLog{byID: make(map[int][]byte, nodes)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// wait blocks until n local completions have been observed.
func (r *receiptLog) wait(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count < n {
		r.cond.Wait()
	}
}

func (r *receiptLog) data(id int) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

func createAll(cluster []*rdmc.Node, groupID int, members []int, log *receiptLog) ([]*rdmc.Group, error) {
	groups := make([]*rdmc.Group, len(cluster))
	for _, id := range members {
		g, err := createOne(cluster[id], groupID, members, id, log)
		if err != nil {
			return nil, err
		}
		groups[id] = g
	}
	return groups, nil
}

func createOne(node *rdmc.Node, groupID int, members []int, id int, rl *receiptLog) (*rdmc.Group, error) {
	return node.CreateGroup(groupID, members, rdmc.GroupConfig{BlockSize: 1 << 20}, rdmc.Callbacks{
		Incoming: func(size int) []byte { return make([]byte, size) },
		Completion: func(seq int, data []byte, size int) {
			rl.mu.Lock()
			if data != nil {
				rl.byID[id] = append([]byte(nil), data...)
			}
			rl.count++
			rl.cond.Broadcast()
			rl.mu.Unlock()
			fmt.Printf("  node %d: transfer complete (%d bytes)\n", id, size)
		},
		Failure: func(err error) {
			fmt.Printf("  node %d: notified of failure: %v\n", id, err)
		},
	})
}
