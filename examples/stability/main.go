// Stability demonstrates the paper's §4.6 path to stronger guarantees: the
// way Derecho layers stable (all-or-nothing) delivery over RDMC. Raw RDMC
// completes messages *locally* — a fast receiver may finish long before a
// slow one — while the stable wrapper buffers each message and delivers it
// only once a shared status table (one-sided writes, package sst) shows
// every member holds it.
//
// The example runs both modes over the same simulated 8-node cluster using
// sequential send — whose local completions spread the most, since the root
// serves receivers one at a time — and prints, for each member, when the
// message completed locally versus when it became deliverable, making the
// stability barrier visible.
//
// Run with:
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"log"
	"time"

	"rdmc/internal/core"
	"rdmc/internal/rdma"
	"rdmc/internal/schedule"
	"rdmc/internal/simhost"
	"rdmc/internal/simnet"
	"rdmc/internal/stable"
)

const (
	nodes   = 8
	msgSize = 64 << 20
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	grid, err := simhost.New(simhost.Config{
		Cluster: simnet.ClusterConfig{
			Nodes:         nodes,
			LinkBandwidth: 100e9 / 8,
			Latency:       1.5e-6,
			CPU:           simnet.DefaultCPUConfig(),
		},
		Seed: 1,
	})
	if err != nil {
		return err
	}
	members := make([]rdma.NodeID, nodes)
	for i := range members {
		members[i] = rdma.NodeID(i)
	}

	localAt := make([]time.Duration, nodes)  // raw RDMC local completion
	stableAt := make([]time.Duration, nodes) // stable delivery
	groups := make([]*stable.Group, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		g, err := stable.New(grid.Engine(i), grid.Network().Provider(members[i]), 1, members,
			stable.Config{BlockSize: 1 << 20, Generator: schedule.New(schedule.Sequential)},
			stable.Callbacks{
				Deliver: func(seq int, _ []byte, _ int) { stableAt[i] = grid.Sim().NowDuration() },
				Failure: func(err error) { log.Printf("node %d: %v", i, err) },
			})
		if err != nil {
			return err
		}
		groups[i] = g
	}
	// Observe raw local completions through the stable group's own engine
	// hook: the wrapper records them before the stability barrier, so we
	// time them via a parallel plain RDMC group on the same fabric.
	plain := make([]*core.Group, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		g, err := grid.Engine(i).CreateGroup(2, members, core.GroupConfig{
			BlockSize: 1 << 20,
			Generator: schedule.New(schedule.Sequential),
			Callbacks: core.Callbacks{
				Completion: func(int, []byte, int) { localAt[i] = grid.Sim().NowDuration() },
			},
		})
		if err != nil {
			return err
		}
		plain[i] = g
	}

	if err := plain[0].SendSized(msgSize); err != nil {
		return err
	}
	grid.Run()
	if err := groups[0].SendSized(msgSize); err != nil {
		return err
	}
	grid.Run()

	fmt.Printf("64 MB multicast to %d nodes with sequential send (the paper's\n", nodes-1)
	fmt.Printf("baseline, whose completions spread the most)\n\n")
	fmt.Printf("%-6s  %16s  %16s\n", "node", "local complete", "stable deliver")
	for i := 0; i < nodes; i++ {
		fmt.Printf("%-6d  %13.2fms  %13.2fms\n", i,
			localAt[i].Seconds()*1e3, stableAt[i].Seconds()*1e3)
	}
	fmt.Println("\nraw RDMC completions spread out (fast nodes finish early); stable")
	fmt.Println("delivery waits for the straggler, so every node delivers together —")
	fmt.Println("\"delivery occurs only after every receiver has a copy\" (§4.6)")
	return nil
}
