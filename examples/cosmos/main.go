// Cosmos replays a synthetic trace calibrated to the Cosmos replication
// workload of the paper's Figure 9 (3 random replicas out of 15, log-normal
// object sizes with median 12 MB and mean 29 MB) on a simulated 100 Gb/s
// cluster, and prints the latency distribution under each multicast
// algorithm. Because the cluster is simulated, the study runs in virtual
// time: replaying hundreds of multi-megabyte writes takes seconds of wall
// time.
//
// Run with:
//
//	go run ./examples/cosmos [-writes 500] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"rdmc"
	"rdmc/internal/trace"
)

func main() {
	writes := flag.Int("writes", 500, "number of replicated writes to replay")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()
	if err := run(*writes, *seed); err != nil {
		log.Fatal(err)
	}
	_ = os.Stdout.Sync()
}

func run(writes int, seed int64) error {
	algos := []rdmc.Algorithm{rdmc.SequentialSend, rdmc.BinomialTree, rdmc.BinomialPipeline}
	fmt.Printf("replaying %d Cosmos-calibrated writes (3 replicas from a 15-node pool)\n\n", writes)
	fmt.Printf("%-20s  %8s  %8s  %8s  %10s\n", "algorithm", "p50 ms", "p90 ms", "p99 ms", "agg Gb/s")
	for _, a := range algos {
		lat, bytes, elapsed, err := replay(a, writes, seed)
		if err != nil {
			return err
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("%-20s  %8.2f  %8.2f  %8.2f  %10.1f\n",
			a.String(),
			ms(lat[len(lat)*50/100]), ms(lat[len(lat)*90/100]), ms(lat[len(lat)*99/100]),
			float64(bytes)*8/elapsed.Seconds()/1e9)
	}
	fmt.Println("\nthe binomial pipeline replicates the same workload with a fraction of the")
	fmt.Println("latency because every NIC sends and receives concurrently (paper Figure 9)")
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// replay issues the writes through overlapping 4-member groups (generator +
// 3 replicas), up to 4 outstanding at a time.
func replay(algo rdmc.Algorithm, writes int, seed int64) ([]time.Duration, int64, time.Duration, error) {
	gen, err := trace.NewCosmos(trace.CosmosConfig{}, seed)
	if err != nil {
		return nil, 0, 0, err
	}
	cluster, err := rdmc.NewSimCluster(rdmc.SimConfig{Nodes: 16, Seed: seed})
	if err != nil {
		return nil, 0, 0, err
	}

	type rec struct {
		issued    time.Duration
		remaining int
		size      int
	}
	var (
		latencies []time.Duration
		bytes     int64
		pending   = make(map[string]*rec)
		roots     = make(map[int]*rdmc.Group)
		issue     func()
		issued    int
	)
	key := func(gi, seq int) string { return fmt.Sprintf("%d/%d", gi, seq) }
	seqOf := make(map[int]int)

	// Pre-create all 455 groups, off the critical path as in the paper.
	for gi, set := range gen.Groups() {
		gi := gi
		members := []int{0}
		for _, m := range set {
			members = append(members, m+1)
		}
		for _, m := range members {
			g, err := cluster.Node(m).CreateGroup(gi+1, members, rdmc.GroupConfig{
				BlockSize: 1 << 20,
				Algorithm: algo,
			}, rdmc.Callbacks{
				Completion: func(seq int, _ []byte, _ int) {
					r := pending[key(gi, seq)]
					if r == nil {
						return
					}
					if r.remaining--; r.remaining == 0 {
						delete(pending, key(gi, seq))
						latencies = append(latencies, cluster.Now()-r.issued)
						bytes += int64(r.size)
						issue()
					}
				},
			})
			if err != nil {
				return nil, 0, 0, err
			}
			if g.Rank() == 0 {
				roots[gi] = g
			}
		}
	}

	issue = func() {
		if issued >= writes {
			return
		}
		w := gen.Next()
		gi := gen.GroupIndex(w.Group)
		issued++
		seq := seqOf[gi]
		seqOf[gi] = seq + 1
		pending[key(gi, seq)] = &rec{issued: cluster.Now(), remaining: 4, size: w.Size}
		if err := roots[gi].SendSized(w.Size); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 4; i++ {
		issue()
	}
	elapsed := cluster.Run()
	if len(latencies) != writes {
		return nil, 0, 0, fmt.Errorf("completed %d of %d writes", len(latencies), writes)
	}
	return latencies, bytes, elapsed, nil
}
